//! Per-job `SPEEDUP` evaluation with shape-level memoization.
//!
//! `SPEEDUP_j(A_j)` (Eqn 15) only depends on the placement through its
//! `(K, N)` shape, because `T_sync` is locality- but not
//! identity-sensitive (Eqn 10). The genetic algorithm evaluates tens of
//! thousands of placements per interval; caching by shape makes each
//! evaluation O(1) after the first golden-section solve.
//!
//! # Concurrency
//!
//! The cache is shared by every worker thread of the parallel fitness
//! evaluator, so lookups take `&self` and the table is sharded by job
//! behind `parking_lot::RwLock`s: one job's shapes always live in one
//! shard, and jobs spread across [`SHARD_COUNT`] shards so concurrent
//! evaluations of different jobs rarely contend.
//!
//! Determinism under concurrency is free because the memoized value is
//! a **pure** function of `(job.model, shape)`: when two threads race
//! on the same miss, both compute the identical value and the second
//! insert overwrites the first with the same bits. Cache state can
//! differ between runs; cached *values* cannot.

use parking_lot::RwLock;
use pollux_cluster::JobId;
use pollux_models::{GoodputModel, PlacementShape};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked shards (a power of two).
pub const SHARD_COUNT: usize = 16;

/// The scheduler-facing view of one job at one scheduling interval.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedJob {
    /// Stable job identifier.
    pub id: JobId,
    /// The goodput model reported by the job's `PolluxAgent`.
    pub model: GoodputModel,
    /// Minimum GPUs on which the job's `m0` fits.
    pub min_gpus: u32,
    /// Scale-out cap (at most twice the GPUs ever held; Sec. 4.1).
    pub gpu_cap: u32,
    /// Fairness weight `w_j` (Eqn 16).
    pub weight: f64,
    /// The placement row currently applied in the cluster (empty GPUs
    /// everywhere when the job is pending). Used for restart detection.
    pub current_placement: Vec<u32>,
}

impl SchedJob {
    /// True when the job currently holds any GPUs.
    pub fn is_running(&self) -> bool {
        self.current_placement.iter().any(|&g| g > 0)
    }
}

/// One shard of the memo table: shape-level speedups plus the per-job
/// reference goodput (the Eqn 15 denominator) for the jobs hashed to
/// this shard.
#[derive(Debug, Default)]
struct Shard {
    by_shape: HashMap<(JobId, PlacementShape), f64>,
    reference: HashMap<JobId, f64>,
}

/// Hit/miss counters of a [`SpeedupCache`] (diagnostics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo table.
    pub hits: u64,
    /// Lookups that computed and inserted a fresh value.
    pub misses: u64,
}

/// Memoizes `SPEEDUP_j` per `(job, shape)` within one scheduling round.
///
/// Shared across the fitness worker pool: all methods take `&self`.
/// The cache must be cleared (or rebuilt) whenever the jobs' goodput
/// models change, i.e. at every scheduling interval.
#[derive(Debug, Default)]
pub struct SpeedupCache {
    shards: Vec<RwLock<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SpeedupCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARD_COUNT).map(|_| RwLock::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, id: JobId) -> &RwLock<Shard> {
        // Fibonacci multiplicative hash of the job id: consecutive ids
        // spread across shards.
        let h = (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[h as usize % SHARD_COUNT]
    }

    /// Clears all memoized values and counters (call at the start of
    /// each interval).
    pub fn clear(&mut self) {
        for shard in &self.shards {
            let mut s = shard.write();
            s.by_shape.clear();
            s.reference.clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// `SPEEDUP_j` for the job under `shape` (batch size re-optimized
    /// in both numerator and denominator). Returns 0 for infeasible
    /// shapes (`K < min_gpus`) and shapes beyond the job's scale cap.
    ///
    /// Shapes are canonicalized to `(K, min(N, 2))` before lookup:
    /// `T_sync` (Eqn 10) only distinguishes co-located (`N = 1`) from
    /// cross-node (`N ≥ 2`) placements, so all multi-node shapes with
    /// equal `K` share one speedup value.
    ///
    /// Safe to call from any number of threads concurrently; the
    /// returned value is independent of interleaving (see the module
    /// docs on determinism).
    pub fn speedup(&self, job: &SchedJob, shape: PlacementShape) -> f64 {
        if shape.gpus < job.min_gpus || shape.gpus > job.gpu_cap {
            return 0.0;
        }
        let shape = PlacementShape::new(shape.gpus, shape.nodes.min(2))
            .expect("nodes >= 1 preserved by canonicalization");
        let shard = self.shard(job.id);
        let cached_ref = {
            let s = shard.read();
            if let Some(&v) = s.by_shape.get(&(job.id, shape)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return v;
            }
            s.reference.get(&job.id).copied()
        };

        // Miss: compute outside any lock (both solves are pure), then
        // publish. A racing thread may compute the same value; the
        // duplicate insert is bit-identical.
        let denom =
            cached_ref.unwrap_or_else(|| job.model.max_goodput(job.model.reference_shape()));
        let v = if denom > 0.0 {
            job.model.max_goodput(shape) / denom
        } else {
            0.0
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut s = shard.write();
        s.reference.entry(job.id).or_insert(denom);
        s.by_shape.insert((job.id, shape), v);
        v
    }

    /// Hit/miss counters since construction or the last [`clear`].
    ///
    /// [`clear`]: SpeedupCache::clear
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized `(job, shape)` entries (diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().by_shape.len()).sum()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().by_shape.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_models::{BatchSizeLimits, EfficiencyModel, ThroughputParams};

    pub(crate) fn test_model(m0: u64, phi: f64) -> GoodputModel {
        let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
        let eff = EfficiencyModel::from_noise_scale(m0, phi).unwrap();
        let limits = BatchSizeLimits::new(m0, 65_536, 512).unwrap();
        GoodputModel::new(tp, eff, limits).unwrap()
    }

    fn job(id: u32, cap: u32) -> SchedJob {
        SchedJob {
            id: JobId(id),
            model: test_model(128, 2000.0),
            min_gpus: 1,
            gpu_cap: cap,
            weight: 1.0,
            current_placement: vec![],
        }
    }

    #[test]
    fn speedup_matches_model_directly() {
        let j = job(1, 64);
        let cache = SpeedupCache::new();
        for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (8, 2)] {
            let shape = PlacementShape::new(g, n).unwrap();
            let expect = j.model.speedup(shape);
            let got = cache.speedup(&j, shape);
            assert!((got - expect).abs() < 1e-9, "({g},{n}): {got} vs {expect}");
        }
    }

    #[test]
    fn cache_hits_do_not_recompute() {
        let j = job(1, 64);
        let cache = SpeedupCache::new();
        let shape = PlacementShape::new(4, 1).unwrap();
        let a = cache.speedup(&j, shape);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
        let b = cache.speedup(&j, shape);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(a, b);
    }

    #[test]
    fn canonicalized_shapes_share_entries() {
        let j = job(1, 64);
        let cache = SpeedupCache::new();
        let a = cache.speedup(&j, PlacementShape::new(8, 2).unwrap());
        // 8 GPUs over 4 nodes canonicalizes to (8, 2): a hit.
        let b = cache.speedup(&j, PlacementShape::new(8, 4).unwrap());
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn respects_gpu_cap_and_min() {
        let mut j = job(1, 4);
        j.min_gpus = 2;
        let cache = SpeedupCache::new();
        assert_eq!(cache.speedup(&j, PlacementShape::single()), 0.0);
        assert!(cache.speedup(&j, PlacementShape::new(2, 1).unwrap()) > 0.0);
        assert!(cache.speedup(&j, PlacementShape::new(4, 1).unwrap()) > 0.0);
        assert_eq!(cache.speedup(&j, PlacementShape::new(5, 2).unwrap()), 0.0);
        // Out-of-bounds shapes never touch the memo table.
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_resets_memoization_and_stats() {
        let j = job(1, 64);
        let mut cache = SpeedupCache::new();
        cache.speedup(&j, PlacementShape::single());
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 0 });
    }

    #[test]
    fn jobs_spread_across_shards() {
        let cache = SpeedupCache::new();
        let touched: std::collections::HashSet<usize> = (0..64u32)
            .map(|id| {
                let shard = cache.shard(JobId(id)) as *const _ as usize;
                shard
            })
            .collect();
        assert!(
            touched.len() > SHARD_COUNT / 2,
            "only {} shards",
            touched.len()
        );
    }

    #[test]
    fn concurrent_readers_agree_and_stats_balance() {
        // 8 threads hammer the same small shape set: every thread must
        // observe the exact same (bit-identical) value per shape, and
        // hits + misses must account for every query. Racing first
        // queries may each count a miss, but the memo table still ends
        // up with exactly one entry per canonical shape.
        let jobs: Vec<SchedJob> = (0..4).map(|i| job(i, 64)).collect();
        let shapes: Vec<PlacementShape> = (1..=8u32)
            .map(|g| PlacementShape::new(g, g.div_ceil(4)).unwrap())
            .collect();
        let cache = SpeedupCache::new();
        let queries_per_thread = jobs.len() * shapes.len();
        let per_thread: Vec<Vec<u64>> = crate::par::parallel_map(8, 8, |_| {
            let mut seen = Vec::with_capacity(queries_per_thread);
            for j in &jobs {
                for &s in &shapes {
                    seen.push(cache.speedup(j, s).to_bits());
                }
            }
            seen
        });
        for t in &per_thread[1..] {
            assert_eq!(t, &per_thread[0], "threads observed different values");
        }
        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses,
            (8 * queries_per_thread) as u64,
            "every query must count as a hit or a miss"
        );
        assert!(stats.misses >= queries_per_thread as u64);
        assert!(stats.hits > 0, "repeat queries must hit");
        // (8,2) and (8,4)-style aliases collapse; here every shape is
        // already canonical, so the table holds jobs × shapes entries.
        assert_eq!(cache.len(), queries_per_thread);
    }

    #[test]
    fn is_running_detects_allocations() {
        let mut j = job(1, 64);
        assert!(!j.is_running());
        j.current_placement = vec![0, 0, 0];
        assert!(!j.is_running());
        j.current_placement = vec![0, 2, 0];
        assert!(j.is_running());
    }
}
