//! Job fairness weights (Eqn 16).
//!
//! ```text
//! w_j = min(1, GPUTIME_THRES / GPUTIME(j))^λ
//! ```
//!
//! Jobs keep weight 1 until they have consumed `GPUTIME_THRES`
//! GPU-seconds; after that the weight decays, letting smaller jobs
//! finish quickly ahead of long-running large jobs. `λ = 0` disables
//! the decay (every job weighs 1), larger `λ` decays faster.

use serde::{Deserialize, Serialize};

/// Configuration of the weight decay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightConfig {
    /// GPU-time threshold below which jobs keep full weight
    /// (GPU-seconds; the paper uses 4 GPU-hours).
    pub gputime_thres: f64,
    /// Decay exponent λ ≥ 0 (the paper's default is 0.5).
    pub lambda: f64,
}

impl Default for WeightConfig {
    fn default() -> Self {
        Self {
            gputime_thres: 4.0 * 3600.0,
            lambda: 0.5,
        }
    }
}

/// Computes `w_j` for a job that has consumed `gputime` GPU-seconds.
///
/// Non-finite or negative GPU-time is treated as 0 (full weight).
///
/// # Examples
///
/// ```
/// use pollux_sched::{job_weight, WeightConfig};
///
/// let cfg = WeightConfig::default(); // 4 GPU-hour threshold, λ = 0.5
/// assert_eq!(job_weight(&cfg, 3600.0), 1.0);               // under threshold
/// assert!((job_weight(&cfg, 16.0 * 3600.0) - 0.5) < 1e-12); // 4x over: (1/4)^0.5
/// ```
pub fn job_weight(config: &WeightConfig, gputime: f64) -> f64 {
    if config.lambda <= 0.0 {
        return 1.0;
    }
    let gputime = if gputime.is_finite() {
        gputime.max(0.0)
    } else {
        0.0
    };
    if gputime <= config.gputime_thres {
        1.0
    } else {
        (config.gputime_thres / gputime).powf(config.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(lambda: f64) -> WeightConfig {
        WeightConfig {
            gputime_thres: 4.0 * 3600.0,
            lambda,
        }
    }

    #[test]
    fn full_weight_below_threshold() {
        let c = cfg(0.5);
        assert_eq!(job_weight(&c, 0.0), 1.0);
        assert_eq!(job_weight(&c, 3600.0), 1.0);
        assert_eq!(job_weight(&c, 4.0 * 3600.0), 1.0);
    }

    #[test]
    fn decays_above_threshold() {
        let c = cfg(0.5);
        // 16 GPU-hours = 4x the threshold: weight = (1/4)^0.5 = 0.5.
        assert!((job_weight(&c, 16.0 * 3600.0) - 0.5).abs() < 1e-12);
        // 400 GPU-hours: weight = (1/100)^0.5 = 0.1.
        assert!((job_weight(&c, 400.0 * 3600.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn lambda_zero_disables_decay() {
        let c = cfg(0.0);
        assert_eq!(job_weight(&c, 1e12), 1.0);
    }

    #[test]
    fn lambda_one_decays_faster_than_half() {
        let g = 64.0 * 3600.0;
        assert!(job_weight(&cfg(1.0), g) < job_weight(&cfg(0.5), g));
    }

    #[test]
    fn garbage_gputime_gets_full_weight() {
        let c = cfg(0.5);
        assert_eq!(job_weight(&c, f64::NAN), 1.0);
        assert_eq!(job_weight(&c, -5.0), 1.0);
        assert_eq!(job_weight(&c, f64::INFINITY), 1.0);
    }

    proptest! {
        #[test]
        fn weight_in_unit_interval_and_monotone(
            lambda in 0.0f64..3.0,
            g1 in 0.0f64..1e9,
            g2 in 0.0f64..1e9,
        ) {
            let c = cfg(lambda);
            let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
            let w_lo = job_weight(&c, lo);
            let w_hi = job_weight(&c, hi);
            prop_assert!(w_lo > 0.0 && w_lo <= 1.0);
            prop_assert!(w_hi > 0.0 && w_hi <= 1.0);
            // More attained GPU-time never increases the weight.
            prop_assert!(w_hi <= w_lo + 1e-12);
        }
    }
}
