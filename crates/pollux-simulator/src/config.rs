//! Simulation parameters.

use serde::{Deserialize, Serialize};

/// Global simulation parameters, defaulting to the paper's setup
/// (Sec. 5.1 / 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulation tick in seconds.
    pub tick_seconds: f64,
    /// Scheduling interval in seconds (the paper uses 60 s).
    pub sched_interval: f64,
    /// Agent reporting/refit interval in seconds (the paper uses 30 s).
    pub report_interval: f64,
    /// Checkpoint-restart delay injected on re-allocation (30 s).
    pub restart_delay: f64,
    /// Fractional slowdown applied to distributed jobs sharing a node
    /// (0.0 = none, 0.5 = Fig 9's worst case).
    pub interference_slowdown: f64,
    /// Relative (uniform ±) measurement noise on iteration times.
    pub measurement_noise: f64,
    /// Relative (uniform ±) noise on the measured gradient noise scale.
    pub phi_noise: f64,
    /// Hard stop for the simulation clock (seconds).
    pub max_sim_time: f64,
    /// Record per-job `(time, gpus, batch, progress)` samples at every
    /// scheduling interval (off by default; adds memory proportional
    /// to jobs × intervals).
    pub record_job_series: bool,
    /// Worker threads handed to the policy's optimizer at simulation
    /// start via `SchedulingPolicy::configure_parallelism` (1 = fully
    /// serial). Simulation results are independent of this value for
    /// policies honoring the determinism contract.
    pub sched_threads: usize,
    /// Rack width handed to the policy at simulation start (and again
    /// after every resize) via `SchedulingPolicy::configure_topology`:
    /// nodes `[0, n)`, `[n, 2n)`, … form racks (the last may be
    /// smaller). `0` (the default) keeps the cluster flat — no
    /// topology is configured and results are byte-identical to
    /// builds that predate the knob. Any value ≥ the node count yields
    /// a single rack, which rack-aware policies must treat exactly
    /// like the flat search.
    #[serde(default)]
    pub nodes_per_rack: u32,
    /// Worker threads for the engine's own per-job work: the job-major
    /// chunk advancement stripes and the report-round refit/tune
    /// fan-out. `0` and `1` both mean fully serial (0 is the serde
    /// default so configs predating the knob stay valid). Results are
    /// byte-identical at any thread count — the engine draws all RNG
    /// serially and commits per-job results in job order — so this is
    /// purely a wall-clock knob.
    #[serde(default)]
    pub engine_threads: usize,
    /// RNG seed for measurement noise and policy randomness.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            tick_seconds: 1.0,
            sched_interval: 60.0,
            report_interval: 30.0,
            restart_delay: 30.0,
            interference_slowdown: 0.0,
            measurement_noise: 0.05,
            phi_noise: 0.10,
            max_sim_time: 7.0 * 24.0 * 3600.0,
            record_job_series: false,
            sched_threads: 1,
            nodes_per_rack: 0,
            engine_threads: 1,
            seed: 0,
        }
    }
}

impl SimConfig {
    /// Validates parameter sanity. Returns `None` for non-finite or
    /// non-positive intervals or out-of-range noise/slowdown
    /// fractions. (Finiteness matters: the engine computes event
    /// horizons as tick indices from these times, and a NaN/∞ interval
    /// has no meaningful tick.)
    pub fn validated(self) -> Option<Self> {
        let ok = self.tick_seconds > 0.0
            && self.tick_seconds.is_finite()
            && self.sched_interval >= self.tick_seconds
            && self.sched_interval.is_finite()
            && self.report_interval >= self.tick_seconds
            && self.report_interval.is_finite()
            && self.restart_delay >= 0.0
            && self.restart_delay.is_finite()
            && (0.0..1.0).contains(&self.interference_slowdown)
            && (0.0..1.0).contains(&self.measurement_noise)
            && (0.0..1.0).contains(&self.phi_noise)
            && self.max_sim_time > 0.0
            && self.max_sim_time.is_finite()
            && self.sched_threads >= 1;
        if ok {
            Some(self)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(SimConfig::default().validated().is_some());
    }

    #[test]
    fn rejects_bad_parameters() {
        let cases = [
            SimConfig {
                tick_seconds: 0.0,
                ..Default::default()
            },
            SimConfig {
                sched_interval: 0.5,
                ..Default::default()
            },
            SimConfig {
                interference_slowdown: 1.0,
                ..Default::default()
            },
            SimConfig {
                measurement_noise: -0.1,
                ..Default::default()
            },
            SimConfig {
                sched_threads: 0,
                ..Default::default()
            },
            SimConfig {
                max_sim_time: f64::INFINITY,
                ..Default::default()
            },
            SimConfig {
                restart_delay: f64::NAN,
                ..Default::default()
            },
            SimConfig {
                sched_interval: f64::INFINITY,
                ..Default::default()
            },
        ];
        for c in cases {
            assert!(c.validated().is_none(), "accepted {c:?}");
        }
    }
}
