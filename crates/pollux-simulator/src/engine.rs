//! The discrete-time simulation engine.
//!
//! # Macro-stepped, job-major execution
//!
//! [`Simulation::run`] does not iterate tick-by-tick. Between *event
//! horizons* — the next arrival, restart-delay expiry, report tick,
//! scheduling tick, earliest analytically-predicted job completion,
//! and the simulation end — nothing a tick can observe changes except
//! each job's own training progress and the per-tick measurement
//! noise. So the engine computes per-job invariants once per
//! macro-step (interference slowdown, iteration time, throughput, the
//! profiler slot) and advances the intervening ticks **job-major**:
//! each job's whole chunk runs as one tight loop over its private
//! accumulators, making jobs independent work items for
//! [`pollux_sched::parallel_map`]; see `Simulation::advance_chunk`
//! for the exact contract. The previous tick-major macro inner loop is
//! retained as [`Simulation::run_tick_major`] (the `bench_sim`
//! comparison baseline), and the original per-tick stepper as
//! [`Simulation::run_reference`].
//!
//! The determinism contract is strict: for a fixed seed the
//! macro-stepped engine produces a `SimResult` **bit-identical** to
//! both retained steppers, at any `engine_threads` count (same RNG
//! draw sequence, same f64 addition order per accumulator). The
//! determinism suite in `tests/macro_step.rs` pins this with golden
//! digests and reference-equality proptests.

use crate::config::SimConfig;
use crate::interference::InterferenceIndex;
use crate::job::{JobState, SimJob};
use crate::metrics::{
    ClusterSample, EventKind, JobRecord, JobSample, SchedIntervalSample, SchedulingEvent, SimResult,
};
use crate::policy::{PolicyJobView, SchedulingPolicy};
use pollux_agent::{ObservationRun, ReportPlan};
use pollux_cluster::{ClusterSpec, JobId, NodeId, Topology};
use pollux_control::{Reallocation, RoundPlanner};
use pollux_models::{GradientStats, PlacementShape};
use pollux_sched::parallel_map;
use pollux_telemetry::{Counter, HistogramHandle, NullSink, Recorder};
use pollux_workload::{JobSpec, UserConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A job submission handed to the simulation: the trace record plus
/// the user configuration in effect (tuned or realistic).
pub type Submission = (JobSpec, UserConfig);

/// A complete simulation run: cluster, workload, and policy.
///
/// # Examples
///
/// A minimal policy that gives every job one GPU on the first node
/// with space, simulated over a tiny workload:
///
/// ```
/// use pollux_cluster::{AllocationMatrix, ClusterSpec};
/// use pollux_simulator::{PolicyJobView, SchedulingPolicy, SimConfig, Simulation};
/// use pollux_workload::{TraceConfig, TraceGenerator};
/// use rand::rngs::StdRng;
///
/// struct OneGpuEach;
/// impl SchedulingPolicy for OneGpuEach {
///     fn name(&self) -> &'static str {
///         "one-gpu-each"
///     }
///     fn schedule(
///         &mut self,
///         _now: f64,
///         jobs: &[PolicyJobView<'_>],
///         spec: &ClusterSpec,
///         _rng: &mut StdRng,
///     ) -> AllocationMatrix {
///         let mut m = AllocationMatrix::zeros(jobs.len(), spec.num_nodes());
///         for (j, _) in jobs.iter().enumerate() {
///             let n = j % spec.num_nodes();
///             if m.gpus_used_on(n) < 4 {
///                 m.set(j, n, 1);
///             }
///         }
///         m
///     }
/// }
///
/// let trace = TraceGenerator::new(TraceConfig {
///     num_jobs: 4,
///     duration_hours: 0.2,
///     seed: 3,
///     ..Default::default()
/// })
/// .unwrap()
/// .generate();
/// let workload = trace.into_iter().map(|j| {
///     let user = j.tuned;
///     (j, user)
/// }).collect();
/// let sim = SimConfig {
///     max_sim_time: 24.0 * 3600.0,
///     ..Default::default()
/// };
/// let result = Simulation::new(sim, ClusterSpec::homogeneous(2, 4).unwrap(), OneGpuEach, workload)
///     .unwrap()
///     .run();
/// assert_eq!(result.records.len(), 4);
/// assert!(result.avg_jct().is_some());
/// ```
pub struct Simulation<P: SchedulingPolicy> {
    config: SimConfig,
    spec: ClusterSpec,
    policy: P,
    /// The shared control-plane round pipeline (also driven by the
    /// live `ClusterService` in `pollux-core`): invokes the policy,
    /// clamps its matrix, and diffs placements into reallocation
    /// decisions the engine applies.
    planner: RoundPlanner,
    /// Not-yet-submitted jobs, sorted by ascending submit time.
    arrivals: Vec<Submission>,
    /// Spawned jobs (active and finished).
    jobs: Vec<SimJob>,
    /// Indices of non-finished jobs, ascending. Maintained
    /// incrementally (push on spawn, remove on finish) so the hot
    /// paths never scan finished jobs. Ascending order matters: it is
    /// what keeps the per-job RNG draw sequence identical to a full
    /// index-order scan.
    active: Vec<usize>,
    rng: StdRng,
    series: Vec<ClusterSample>,
    events: Vec<SchedulingEvent>,
    job_series: Vec<JobSample>,
    sched_stats: Vec<SchedIntervalSample>,
    node_seconds: f64,
    /// Reused interference buffer, indexed by job (all jobs, not just
    /// active ones, so stale entries can never alias a live index).
    slowdown: Vec<f64>,
    /// Incremental interference index: per-node occupant sets and
    /// per-job node counts, updated on placement deltas (reallocation,
    /// finish, resize) so each macro-step's interference query costs
    /// O(nodes + occupancy) instead of a full O(active · nodes)
    /// placement rescan. Maintained on both steppers; only the macro
    /// path reads it (the reference stepper keeps its verbatim scan).
    interference: InterferenceIndex,
    /// Recycled (always empty) allocation for the per-interval policy
    /// views; see [`take_views`] / [`store_views`].
    view_buf: Vec<PolicyJobView<'static>>,
    /// Recycled per-macro-step job contexts.
    chunk_buf: Vec<ChunkCtx>,
    /// Recycled per-tick finish list.
    finished_buf: Vec<(usize, JobId)>,
    /// Recycled measurement-noise buffer for the job-major chunk pass:
    /// `truncated × n_run` eps values, drawn serially in the tick-major
    /// RNG order but stored transposed (each running job's draws form
    /// one contiguous column) so the per-job loop streams its column.
    eps_buf: Vec<f64>,
    /// Telemetry handle (disabled by default; see
    /// [`Simulation::with_recorder`]). Purely observational: the
    /// determinism suite proves a `SimResult` is bit-identical with
    /// recording on, off, or compiled out.
    recorder: Recorder,
    /// Hoisted counter/histogram handles for the engine hot path.
    telem: EngineTelemetry,
    /// Cumulative restart count across all jobs (feeds the
    /// `engine/cluster_sample` time-series; per-job counts live on
    /// the job records).
    restarts_total: u64,
}

/// Counter and histogram handles hoisted out of the engine hot path:
/// one atomic add per touch, no registry lookup. All fields are inert
/// ZSTs when the `telemetry` feature is off, and no-op handles when no
/// recorder is attached.
#[derive(Default)]
struct EngineTelemetry {
    /// Macro-steps executed.
    chunks: Counter,
    /// Ticks advanced (sum of chunk lengths).
    ticks: Counter,
    /// Chunks cut short by a mid-chunk job completion.
    mid_chunk_aborts: Counter,
    /// Interference-vector recomputations (one per macro-step).
    interference_recomputes: Counter,
    /// Which event horizon bounded each chunk.
    horizon_report: Counter,
    horizon_sched: Counter,
    horizon_arrival: Counter,
    horizon_restart: Counter,
    horizon_end: Counter,
    /// Distribution of chunk lengths in ticks.
    chunk_ticks: HistogramHandle,
    /// θsys refits computed through the parallel report-round fan-out
    /// (equals `agent/refits` attempts issued by the engine; kept
    /// separate so captures show how much refit work was parallelizable).
    refits_parallel: Counter,
}

impl EngineTelemetry {
    fn new(rec: &Recorder) -> Self {
        Self {
            chunks: rec.counter("engine", "chunks"),
            ticks: rec.counter("engine", "ticks"),
            mid_chunk_aborts: rec.counter("engine", "mid_chunk_aborts"),
            interference_recomputes: rec.counter("engine", "interference_recomputes"),
            horizon_report: rec.counter("engine", "horizon_report"),
            horizon_sched: rec.counter("engine", "horizon_sched"),
            horizon_arrival: rec.counter("engine", "horizon_arrival"),
            horizon_restart: rec.counter("engine", "horizon_restart"),
            horizon_end: rec.counter("engine", "horizon_end"),
            chunk_ticks: rec.histogram("engine", "chunk_ticks"),
            refits_parallel: rec.counter("agent", "refits_parallel"),
        }
    }
}

/// Per-job invariants hoisted for one macro-step: between event
/// horizons everything here is constant — placement, batch size, and
/// interference only change on boundaries, and the chunk aborts at the
/// first job completion. Statistical efficiency is *not* hoisted: it
/// depends on the job's own progress, which moves every tick.
struct ChunkCtx {
    /// Index into `Simulation::jobs`.
    idx: usize,
    /// GPU-seconds accrued per tick (`gpus · dt`).
    gpu_dt: f64,
    /// Present for `Running` jobs holding GPUs; `None` for
    /// `Restarting` jobs, which only accrue GPU time.
    run: Option<RunCtx>,
}

struct RunCtx {
    /// Batch size in effect.
    batch: u64,
    /// Total work (examples at m0-efficiency) at which the job ends.
    work: f64,
    /// True throughput after interference (examples/s).
    throughput: f64,
    /// Per-tick raw-example increment (`throughput · dt`).
    tput_dt: f64,
    /// Iteration time the agent observes before measurement noise
    /// (`t_iter / (1 − slowdown)`; interference is indistinguishable
    /// from slowness to the agent).
    t_base: f64,
    /// This job's column in the chunk's eps buffer: its position among
    /// the running contexts, in ascending job order.
    col: usize,
    /// Open profiler batch for this job's `(shape, batch)` key.
    obs: ObservationRun,
}

struct ChunkOutcome {
    /// Ticks actually executed (≥ 1; short on early completion).
    ticks: u64,
    /// Whether the simulation is over (no arrivals left, all jobs
    /// finished).
    exit: bool,
}

/// Per-job result of one job-major chunk stripe, computed against
/// immutable state on a worker thread and committed serially in job
/// order.
struct JobOutcome {
    /// The job's attained service after the chunk (seeded from the
    /// chunk-start value, advanced by the identical per-tick `+=`
    /// sequence, committed absolutely via `JobLifecycle::set_gputime`).
    gputime: f64,
    /// Present for running jobs; `None` for restarting ones, which
    /// only accrue GPU time.
    run: Option<RunOutcome>,
}

struct RunOutcome {
    /// Training progress after the chunk.
    progress: f64,
    /// Raw examples processed after the chunk.
    examples: f64,
    /// Whether progress crossed the job's total work. By the
    /// truncation pre-scan's construction this can only happen on the
    /// chunk's final tick.
    finished: bool,
    /// The advanced profiler batch (clone of the context's snapshot,
    /// fed the identical observation sequence).
    obs: ObservationRun,
}

/// Serial phase-1 output of one report round entry: everything the
/// parallel plan phase needs, captured (and RNG-drawn) in job order.
struct ReportPrep {
    /// Index into `Simulation::jobs`.
    idx: usize,
    /// The noisy gradient-statistics observation for this round.
    stats: Option<GradientStats>,
    /// Whether the refit trigger fired (profiler gained information).
    refit: bool,
    /// Profiler configuration count at trigger evaluation, committed
    /// to `last_fit_configs` when the fit succeeds.
    configs: usize,
    /// Profiler sample count at trigger evaluation.
    samples: u64,
    /// The placement to tune the batch size for (batch-adaptive
    /// policies only).
    tune_shape: Option<PlacementShape>,
}

/// Jobs per job-major work item. Each job's per-tick efficiency is a
/// serial dependency chain (`progress → φ(progress) → progress`), so a
/// one-job stripe is latency-bound on that chain; interleaving a small
/// fixed block of independent jobs tick-by-tick keeps several chains
/// in flight and makes the loop throughput-bound instead, exactly like
/// the tick-major sweep — while the per-job working set (a block, not
/// the whole cluster) stays cache-resident. The count is a fixed
/// constant so the job → work-item mapping, and therefore the result,
/// is independent of `engine_threads`.
const STRIPE_BLOCK: usize = 8;

/// Advances one block of up to [`STRIPE_BLOCK`] jobs over the whole
/// (truncated) chunk: the job-major inner loop. Pure — reads the
/// frozen contexts/jobs and returns per-job accumulators.
///
/// The loop is tick-outer *within the block* for instruction-level
/// parallelism (see [`STRIPE_BLOCK`]), but every accumulator is
/// per-job: each job's `progress`, `examples`, `gputime`, and profiler
/// sum advance by operand-for-operand the tick-major sequence
/// (efficiency at the job's own moving progress, then the `+=`
/// accumulations, then the noisy observation). Accumulators of
/// different jobs never interact, so interleaving leaves every job's
/// bits identical to a standalone fold.
fn advance_job_block(
    block: &[ChunkCtx],
    jobs: &[SimJob],
    tlen: usize,
    eps: &[f64],
    dt: f64,
) -> [Option<JobOutcome>; STRIPE_BLOCK] {
    debug_assert!(!block.is_empty() && block.len() <= STRIPE_BLOCK);
    let mut gputime = [0.0f64; STRIPE_BLOCK];
    let mut progress = [0.0f64; STRIPE_BLOCK];
    let mut examples = [0.0f64; STRIPE_BLOCK];
    let mut obs: [Option<ObservationRun>; STRIPE_BLOCK] = Default::default();
    for (k, ctx) in block.iter().enumerate() {
        let job = &jobs[ctx.idx];
        gputime[k] = job.lifecycle.gputime();
        if let Some(rs) = &ctx.run {
            progress[k] = job.progress;
            examples[k] = job.examples_processed;
            obs[k] = Some(rs.obs.clone());
        }
    }
    for t in 0..tlen {
        for (k, ctx) in block.iter().enumerate() {
            let Some(rs) = &ctx.run else {
                // Restarting: only GPU time accrues, one add per tick.
                gputime[k] += ctx.gpu_dt;
                continue;
            };
            let job = &jobs[ctx.idx];
            let eff = job.true_efficiency_at(progress[k], rs.batch);
            progress[k] += rs.throughput * eff * dt;
            examples[k] += rs.tput_dt;
            gputime[k] += ctx.gpu_dt;
            let eps_t = eps[rs.col * tlen + t];
            obs[k]
                .as_mut()
                .expect("running ctx has an open run")
                .observe(rs.t_base * (1.0 + eps_t));
            debug_assert!(
                progress[k] < rs.work || t + 1 == tlen,
                "job crossed its work mid-chunk: the truncation pre-scan missed a finish"
            );
        }
    }
    let mut out: [Option<JobOutcome>; STRIPE_BLOCK] = Default::default();
    for (k, ctx) in block.iter().enumerate() {
        out[k] = Some(JobOutcome {
            gputime: gputime[k],
            run: ctx.run.as_ref().map(|rs| RunOutcome {
                progress: progress[k],
                examples: examples[k],
                finished: progress[k] >= rs.work,
                obs: obs[k].take().expect("running ctx has an open run"),
            }),
        });
    }
    out
}

/// Removes every finished index from `active` in one ordered merge.
/// Both lists are ascending (`active` by maintenance invariant,
/// `finished` because finishes are detected in ascending job order),
/// so a two-pointer sweep replaces the old O(active × finished)
/// `retain(.. any ..)` scan.
fn remove_finished_from_active(active: &mut Vec<usize>, finished: &[(usize, JobId)]) {
    debug_assert!(finished.windows(2).all(|w| w[0].0 < w[1].0));
    let mut f = 0;
    active.retain(|&i| {
        while f < finished.len() && finished[f].0 < i {
            f += 1;
        }
        f >= finished.len() || finished[f].0 != i
    });
}

/// First tick index `t >= lo` whose wall-clock time `t · dt` is at or
/// after `time`. A float division seeds the guess and two integer
/// adjustment loops (at most a step or two each) make the answer exact
/// regardless of rounding in the division.
fn first_tick_at_or_after(time: f64, dt: f64, lo: u64) -> u64 {
    let guess = time / dt;
    if !guess.is_finite() || guess >= 9.0e18 {
        return u64::MAX; // Beyond any horizon; callers min() against max_ticks.
    }
    let mut t = guess.ceil().max(0.0) as u64;
    while t > 0 && (t - 1) as f64 * dt >= time {
        t -= 1;
    }
    while (t as f64) * dt < time {
        t += 1;
    }
    t.max(lo)
}

/// Takes the engine's recycled view buffer, re-borrowing its (empty)
/// allocation at the shorter lifetime of the current interval — a
/// plain covariant coercion, no unsafe needed in this direction.
fn take_views<'a>(buf: &mut Vec<PolicyJobView<'static>>) -> Vec<PolicyJobView<'a>> {
    std::mem::take(buf)
}

/// Stores an interval's view buffer back for reuse. Only the
/// allocation survives: the vector is emptied first, so no borrow with
/// the interval's lifetime escapes into the `'static` slot.
fn store_views(buf: &mut Vec<PolicyJobView<'static>>, mut views: Vec<PolicyJobView<'_>>) {
    views.clear();
    let mut views = std::mem::ManuallyDrop::new(views);
    let (ptr, cap) = (views.as_mut_ptr(), views.capacity());
    // SAFETY: `views` is empty, so the allocation holds no value of
    // the shorter lifetime — only raw capacity is reused. The
    // (ptr, 0, cap) triple comes from a live Vec whose buffer is not
    // freed (ManuallyDrop), `PolicyJobView` has no drop glue, and the
    // cast only changes the lifetime parameter of the *element type*
    // of an element-less buffer (size and alignment are unchanged).
    *buf = unsafe { Vec::from_raw_parts(ptr.cast::<PolicyJobView<'static>>(), 0, cap) };
}

/// Why a [`Simulation`] could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimBuildError {
    /// The [`SimConfig`] failed validation (non-positive tick size,
    /// intervals, horizon, or restart delay).
    InvalidConfig,
    /// The workload contains no submissions.
    EmptyWorkload,
    /// A submission's submit time is NaN or infinite, so it has no
    /// meaningful position in the arrival order.
    NonFiniteSubmitTime,
}

impl std::fmt::Display for SimBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig => write!(f, "invalid simulation config"),
            Self::EmptyWorkload => write!(f, "workload has no submissions"),
            Self::NonFiniteSubmitTime => write!(f, "submission with non-finite submit time"),
        }
    }
}

impl std::error::Error for SimBuildError {}

impl<P: SchedulingPolicy> Simulation<P> {
    /// Creates a simulation. Returns `None` when [`Self::try_new`]
    /// would fail; kept as the concise constructor for tests and
    /// examples that don't care which input was bad.
    pub fn new(
        config: SimConfig,
        spec: ClusterSpec,
        policy: P,
        workload: Vec<Submission>,
    ) -> Option<Self> {
        Self::try_new(config, spec, policy, workload).ok()
    }

    /// Creates a simulation, reporting *why* the inputs were rejected.
    ///
    /// # Errors
    ///
    /// - [`SimBuildError::InvalidConfig`] when the config fails
    ///   validation;
    /// - [`SimBuildError::EmptyWorkload`] when no jobs are submitted;
    /// - [`SimBuildError::NonFiniteSubmitTime`] when a submit time is
    ///   NaN or infinite (the old `partial_cmp(..).unwrap_or(Equal)`
    ///   sort silently produced an arbitrary arrival order).
    pub fn try_new(
        config: SimConfig,
        spec: ClusterSpec,
        mut policy: P,
        mut workload: Vec<Submission>,
    ) -> Result<Self, SimBuildError> {
        let config = config.validated().ok_or(SimBuildError::InvalidConfig)?;
        if workload.is_empty() {
            return Err(SimBuildError::EmptyWorkload);
        }
        if workload.iter().any(|(s, _)| !s.submit_time.is_finite()) {
            return Err(SimBuildError::NonFiniteSubmitTime);
        }
        policy.configure_parallelism(config.sched_threads);
        if config.nodes_per_rack > 0 {
            if let Some(topo) = Topology::grouped(spec.num_nodes() as u32, config.nodes_per_rack) {
                policy.configure_topology(Some(&topo));
            }
        }
        workload.sort_by(|a, b| a.0.submit_time.total_cmp(&b.0.submit_time));
        workload.reverse(); // Pop from the back in time order.
        let seed = config.seed;
        let num_nodes = spec.num_nodes();
        Ok(Self {
            config,
            spec,
            policy,
            planner: RoundPlanner::new(),
            arrivals: workload,
            jobs: Vec::new(),
            active: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            series: Vec::new(),
            events: Vec::new(),
            job_series: Vec::new(),
            sched_stats: Vec::new(),
            node_seconds: 0.0,
            slowdown: Vec::new(),
            interference: InterferenceIndex::new(num_nodes),
            view_buf: Vec::new(),
            chunk_buf: Vec::new(),
            finished_buf: Vec::new(),
            eps_buf: Vec::new(),
            recorder: Recorder::disabled(),
            telem: EngineTelemetry::default(),
            restarts_total: 0,
        })
    }

    /// Attaches a telemetry recorder to the simulation and its policy.
    ///
    /// Recording is observational only: it never draws from the
    /// simulation RNG or perturbs any f64 accumulation, so the
    /// resulting `SimResult` is bit-identical with or without a
    /// recorder (pinned by the golden-digest suite in
    /// `tests/macro_step.rs`).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.telem = EngineTelemetry::new(&recorder);
        // Identify the policy in the capture so reports and Chrome
        // traces from different zoo runs are self-describing; staged
        // policies additionally emit their per-stage names from
        // `attach_telemetry`.
        recorder.meta("sched", "policy", self.policy.name());
        self.policy.attach_telemetry(recorder.clone());
        self.planner.attach_telemetry(recorder.clone());
        // Topology metadata for trace consumers (the Chrome exporter
        // groups node tracks by rack from this point).
        recorder.point(
            "engine",
            "topology",
            0.0,
            &[
                ("num_nodes", self.spec.num_nodes() as f64),
                ("nodes_per_rack", f64::from(self.config.nodes_per_rack)),
            ],
        );
        self.recorder = recorder;
        self
    }

    /// `POLLUX_SIM_DEBUG` support: mirror every telemetry event to
    /// stderr as JSONL. When no recorder is attached, a throwaway
    /// `NullSink` recorder is created so the mirror alone works — the
    /// engine hot path carries no ad-hoc debug branches.
    fn init_debug_mirror(&mut self) {
        if std::env::var_os("POLLUX_SIM_DEBUG").is_some() {
            if !self.recorder.is_enabled() {
                let rec = Recorder::new(std::sync::Arc::new(NullSink));
                self.telem = EngineTelemetry::new(&rec);
                self.policy.attach_telemetry(rec.clone());
                self.planner.attach_telemetry(rec.clone());
                self.recorder = rec;
            }
            self.recorder.enable_stderr_mirror();
        }
    }

    /// Runs the simulation to completion (all jobs finished) or to the
    /// configured time horizon, and returns the metrics.
    ///
    /// Macro-stepped and job-major: boundary work (arrivals, wake-ups,
    /// reports, scheduling) happens at event horizons; the ticks in
    /// between run through `Self::advance_chunk` with per-job
    /// invariants hoisted and each job advanced over its whole chunk
    /// in one stripe. Bit-identical to [`Self::run_tick_major`] and
    /// [`Self::run_reference`] for any fixed seed, at any
    /// `engine_threads` count.
    pub fn run(self) -> SimResult {
        self.run_macro(true)
    }

    /// The retained tick-major macro stepper: identical event-horizon
    /// chunking, but the inner loop sweeps every running job each tick
    /// (the pre-job-major layout). Kept as the `bench_sim` comparison
    /// baseline isolating the job-major chunk advancement, and as an
    /// extra equivalence anchor for the determinism suite. Always
    /// serial inside chunks; report rounds share [`Self::run`]'s
    /// two-phase path.
    pub fn run_tick_major(self) -> SimResult {
        self.run_macro(false)
    }

    fn run_macro(mut self, job_major: bool) -> SimResult {
        let dt = self.config.tick_seconds;
        let sched_every = (self.config.sched_interval / dt).round().max(1.0) as u64;
        let report_every = (self.config.report_interval / dt).round().max(1.0) as u64;
        let max_ticks = (self.config.max_sim_time / dt).ceil() as u64;
        self.init_debug_mirror();

        let mut now = 0.0;
        let mut tick = 0u64;
        while tick < max_ticks {
            now = tick as f64 * dt;
            self.tick_boundaries(tick, now, report_every, sched_every);
            let horizon = self.next_horizon(tick, dt, report_every, sched_every, max_ticks);
            let chunk = if job_major {
                self.advance_chunk(tick, horizon, dt)
            } else {
                self.advance_chunk_tick_major(tick, horizon, dt)
            };
            tick += chunk.ticks;
            now = (tick - 1) as f64 * dt;
            if chunk.exit {
                now += dt;
                break;
            }
        }

        self.sample(now);
        self.finalize(now)
    }

    /// The retained per-tick reference stepper: the pre-macro-step
    /// engine, advancing one tick at a time with no hoisted
    /// invariants. Kept as the ground truth the determinism suite and
    /// `bench_sim` compare [`Self::run`] against.
    pub fn run_reference(mut self) -> SimResult {
        let dt = self.config.tick_seconds;
        let sched_every = (self.config.sched_interval / dt).round().max(1.0) as u64;
        let report_every = (self.config.report_interval / dt).round().max(1.0) as u64;
        let max_ticks = (self.config.max_sim_time / dt).ceil() as u64;
        self.init_debug_mirror();

        let mut now = 0.0;
        for tick in 0..max_ticks {
            now = tick as f64 * dt;
            self.tick_boundaries(tick, now, report_every, sched_every);
            self.advance_tick_reference(now, dt);
            self.node_seconds += self.spec.num_nodes() as f64 * dt;

            // The pre-refactor early-exit check: a full scan over the
            // job list every tick (the macro path folds this into its
            // finish handling).
            if self.arrivals.is_empty() && self.jobs.iter().all(SimJob::is_finished) {
                now += dt;
                break;
            }
        }

        self.sample(now);
        self.finalize(now)
    }

    /// Everything that may only happen on a tick boundary: arrivals,
    /// restart wake-ups, agent reports, rescheduling, sampling. Safe
    /// to call on non-boundary ticks (each action no-ops when not
    /// due), which is what makes resuming after a mid-chunk job
    /// completion trivial.
    fn tick_boundaries(&mut self, tick: u64, now: f64, report_every: u64, sched_every: u64) {
        self.spawn_arrivals(now);
        self.wake_restarts(now);

        if tick.is_multiple_of(report_every) {
            self.report_and_tune(now);
        }
        if tick.is_multiple_of(sched_every) {
            self.reschedule(now);
            self.sample(now);
        }
    }

    /// The next event horizon after `tick` (exclusive chunk end, in
    /// `(tick, max_ticks]`): the earliest of the next report tick,
    /// next scheduling tick, next arrival, next restart-delay expiry,
    /// and the end of simulated time. Job completions are handled by
    /// the chunk itself (prediction inside [`Self::advance_chunk`]
    /// plus an authoritative per-tick check).
    ///
    /// Telemetry: bumps the `engine/horizon_*` counter of whichever
    /// source won (strictly earliest; ties go to the first candidate
    /// in end → report → sched → arrival → restart order). Counter
    /// handles use interior mutability, so `&self` suffices.
    fn next_horizon(
        &self,
        tick: u64,
        dt: f64,
        report_every: u64,
        sched_every: u64,
        max_ticks: u64,
    ) -> u64 {
        let mut horizon = max_ticks;
        let mut fired = &self.telem.horizon_end;
        let report = (tick / report_every + 1) * report_every;
        if report < horizon {
            horizon = report;
            fired = &self.telem.horizon_report;
        }
        let sched = (tick / sched_every + 1) * sched_every;
        if sched < horizon {
            horizon = sched;
            fired = &self.telem.horizon_sched;
        }
        if let Some((spec, _)) = self.arrivals.last() {
            let arrival = first_tick_at_or_after(spec.submit_time, dt, tick + 1);
            if arrival < horizon {
                horizon = arrival;
                fired = &self.telem.horizon_arrival;
            }
        }
        for &i in &self.active {
            if let JobState::Restarting { until } = self.jobs[i].state() {
                let wake = first_tick_at_or_after(until, dt, tick + 1);
                if wake < horizon {
                    horizon = wake;
                    fired = &self.telem.horizon_restart;
                }
            }
        }
        fired.add(1);
        horizon.max(tick + 1)
    }

    /// Builds the per-job chunk contexts shared by both macro paths:
    /// refreshes interference, hoists the per-job invariants, opens
    /// the profiler runs, and applies the analytic completion lower
    /// bound to the chunk length. Returns the context vector (taken
    /// from the recycled buffer), the bounded chunk length, and the
    /// number of running (GPU-holding) contexts.
    fn chunk_setup(&mut self, start: u64, horizon: u64, dt: f64) -> (Vec<ChunkCtx>, u64, usize) {
        self.compute_interference();
        // `compute_interference` sizes the vector to the full job
        // list; a shorter vector would silently under-slow the jobs
        // it misses, so fail loudly instead of defaulting to 0.
        debug_assert_eq!(
            self.slowdown.len(),
            self.jobs.len(),
            "interference slowdown vector must cover every job"
        );
        let mut ctxs = std::mem::take(&mut self.chunk_buf);
        let mut max_len = horizon - start;
        let mut n_run = 0usize;

        let jobs = &mut self.jobs;
        for &idx in &self.active {
            let job = &mut jobs[idx];
            match job.state() {
                JobState::Running => {}
                JobState::Restarting { .. } => {
                    ctxs.push(ChunkCtx {
                        idx,
                        gpu_dt: job.gpus() as f64 * dt,
                        run: None,
                    });
                    continue;
                }
                _ => continue,
            }
            let Some(shape) = job.shape() else { continue };
            let m = job.batch_size;
            let slow = self.slowdown[idx];
            let t_iter = job.true_t_iter(shape, m);
            let throughput = (m as f64 / t_iter) * (1.0 - slow);
            let tput_dt = throughput * dt;

            // Earliest analytically-predicted completion: efficiency
            // ≤ 1, so progress grows by at most `throughput · dt` per
            // tick and the job cannot finish in fewer than
            // ⌊remaining / (throughput · dt)⌋ ticks. Purely a
            // chunk-length heuristic — the finish detection stays
            // authoritative, so correctness never depends on it.
            let remaining = job.spec.work - job.progress;
            if tput_dt > 0.0 && remaining > 0.0 {
                let lb = (remaining / tput_dt).floor();
                if lb.is_finite() && lb >= 1.0 {
                    max_len = max_len.min(if lb >= 9.0e18 { u64::MAX } else { lb as u64 });
                }
            }

            let obs = job.agent.begin_observation_run(shape, m);
            ctxs.push(ChunkCtx {
                idx,
                gpu_dt: shape.gpus as f64 * dt,
                run: Some(RunCtx {
                    batch: m,
                    work: job.spec.work,
                    throughput,
                    tput_dt,
                    t_base: t_iter / (1.0 - slow),
                    col: n_run,
                    obs,
                }),
            });
            n_run += 1;
        }
        (ctxs, max_len, n_run)
    }

    /// Advances up to `horizon - start` ticks **job-major**: each job's
    /// whole chunk runs as one tight loop over its private accumulators
    /// (an independent `parallel_map` work item), with results
    /// committed serially in job order.
    ///
    /// The pass is structured so every observable stays bit-identical
    /// to the tick-major sweep:
    /// 1. *Truncation pre-scan* (serial). The measurement noise only
    ///    feeds the profiler — progress never sees it — so each job's
    ///    finish tick is computable before any eps is drawn. Candidate
    ///    jobs (`remaining ≤ cap · tput_dt`, with slack for f64
    ///    rounding) replay their progress fold to find the first
    ///    crossing; the chunk truncates at the earliest one, which is
    ///    exactly where the tick-major loop would have aborted.
    /// 2. *eps pre-draw* (serial). Exactly `truncated × n_run` draws in
    ///    the tick-major order — per tick, ascending job order — stored
    ///    transposed so each job's draws form one contiguous column.
    ///    The RNG stream is untouched: same count, same order.
    /// 3. *Job stripes* (parallelizable, `engine_threads`). Fixed
    ///    blocks of [`STRIPE_BLOCK`] jobs fold their whole chunk over
    ///    their eps columns ([`advance_job_block`]): per-job
    ///    accumulators see the identical operand sequence as the
    ///    tick-major sweep, and `node_seconds` is the only cross-job
    ///    accumulator — advanced serially at commit by the same
    ///    per-tick additions.
    /// 4. *Commit* (serial, ascending job order): write back progress /
    ///    examples / gputime, record the profiler runs, finish jobs
    ///    that crossed (only possible on the final tick, by step 1),
    ///    and emit events — all in the tick-major order.
    fn advance_chunk(&mut self, start: u64, horizon: u64, dt: f64) -> ChunkOutcome {
        let noise = self.config.measurement_noise;
        let threads = self.config.engine_threads.max(1);
        let node_dt = self.spec.num_nodes() as f64 * dt;
        let arrivals_empty = self.arrivals.is_empty();

        let (mut ctxs, max_len, n_run) = self.chunk_setup(start, horizon, dt);

        // Truncation pre-scan: find the earliest finish tick across
        // jobs (1-based, ≤ the current cap). A job can cross `work`
        // within `cap` ticks only if `remaining ≤ cap · tput_dt`
        // (efficiency ≤ 1); the 1e-6 slack over-approximates f64
        // rounding in the progress fold, so a real finisher is never
        // filtered out — at worst a non-finisher replays its fold.
        // Candidates replay the exact progress arithmetic (same
        // operands as the main stripe), so the detected tick is exact.
        let mut truncated = max_len;
        for ctx in &ctxs {
            let Some(rs) = &ctx.run else { continue };
            let job = &self.jobs[ctx.idx];
            let remaining = rs.work - job.progress;
            if remaining > 0.0 && remaining > truncated as f64 * rs.tput_dt * (1.0 + 1e-6) {
                continue;
            }
            let mut progress = job.progress;
            for t in 1..=truncated {
                let eff = job.true_efficiency_at(progress, rs.batch);
                progress += rs.throughput * eff * dt;
                if progress >= rs.work {
                    truncated = t;
                    break;
                }
            }
        }
        let tlen = truncated as usize;

        // eps pre-draw: tick-major draw order, job-major (transposed)
        // storage. Nothing else draws inside a chunk.
        let mut eps = std::mem::take(&mut self.eps_buf);
        eps.clear();
        eps.resize(n_run * tlen, 0.0);
        {
            let rng = &mut self.rng;
            for t in 0..tlen {
                for ctx in &ctxs {
                    let Some(rs) = &ctx.run else { continue };
                    eps[rs.col * tlen + t] = rng.gen_range(-noise..=noise);
                }
            }
        }

        // Job stripes: pure per-block folds over immutable state, in
        // fixed blocks of `STRIPE_BLOCK` jobs (see its doc for why).
        // With `engine_threads <= 1` this runs inline with no spawns.
        let outcomes = {
            let jobs: &[SimJob] = &self.jobs;
            let ctxs_ref: &[ChunkCtx] = &ctxs;
            let eps_ref: &[f64] = &eps;
            let n_blocks = ctxs_ref.len().div_ceil(STRIPE_BLOCK);
            parallel_map(n_blocks, threads, |b| {
                let lo = b * STRIPE_BLOCK;
                let hi = (lo + STRIPE_BLOCK).min(ctxs_ref.len());
                advance_job_block(&ctxs_ref[lo..hi], jobs, tlen, eps_ref, dt)
            })
        };

        // Serial commit in job order.
        let finish_now = (start + truncated - 1) as f64 * dt;
        let mut finished = std::mem::take(&mut self.finished_buf);
        let jobs = &mut self.jobs;
        let outs = outcomes.into_iter().flatten().flatten();
        for (ctx, out) in ctxs.iter().zip(outs) {
            let job = &mut jobs[ctx.idx];
            job.lifecycle.set_gputime(out.gputime);
            let Some(run) = out.run else { continue };
            job.progress = run.progress;
            job.examples_processed = run.examples;
            if run.finished {
                job.lifecycle.finish(finish_now + dt);
                self.interference.clear_job(ctx.idx, &job.placement);
                job.placement.iter_mut().for_each(|g| *g = 0);
                finished.push((ctx.idx, job.spec.id));
            }
            // Commit the batched profiler observations (including for
            // jobs that just finished — the tick-major loop records up
            // to and including the finish tick too).
            job.agent.record_observation_run(run.obs);
        }
        for _ in 0..truncated {
            self.node_seconds += node_dt;
        }
        let mut exit = false;
        if !finished.is_empty() {
            for &(_, id) in finished.iter() {
                self.events.push(SchedulingEvent {
                    time: finish_now + dt,
                    job: id,
                    kind: EventKind::Finished,
                    gpus: 0,
                });
            }
            remove_finished_from_active(&mut self.active, &finished);
            exit = arrivals_empty && self.active.is_empty();
        }

        ctxs.clear();
        self.chunk_buf = ctxs;
        finished.clear();
        self.finished_buf = finished;
        eps.clear();
        self.eps_buf = eps;

        self.telem.chunks.add(1);
        self.telem.ticks.add(truncated);
        self.telem.chunk_ticks.observe(truncated);
        if truncated < horizon - start {
            // A completion (or its prediction) cut the chunk short of
            // its event horizon.
            self.telem.mid_chunk_aborts.add(1);
        }

        ChunkOutcome {
            ticks: truncated,
            exit,
        }
    }

    /// The retained tick-major chunk advancement (the pre-job-major
    /// inner loop): sweeps every context each tick, drawing eps inline
    /// and aborting after the tick of the first completion. Driven by
    /// [`Self::run_tick_major`] as the benchmark baseline and an extra
    /// determinism anchor.
    ///
    /// Bit-compatibility with the reference stepper:
    /// - RNG: exactly one `gen_range(-noise..=noise)` per running job
    ///   holding GPUs, in ascending job order, per tick — nothing else
    ///   draws inside a chunk;
    /// - f64 accumulation: `progress`, `examples_processed`,
    ///   `gputime`, `node_seconds`, and the profiler sum advance by
    ///   one addition per tick in the original order; cached products
    ///   (`gpus · dt`, `throughput · dt`, `t_iter / (1 − slow)`) have
    ///   bit-identical operands to the per-tick recomputation;
    /// - efficiency is recomputed per tick through the same
    ///   `SimJob::true_efficiency` path — it is a nonlinear function
    ///   of the job's own moving progress and cannot be hoisted.
    fn advance_chunk_tick_major(&mut self, start: u64, horizon: u64, dt: f64) -> ChunkOutcome {
        let noise = self.config.measurement_noise;
        let node_dt = self.spec.num_nodes() as f64 * dt;
        let arrivals_empty = self.arrivals.is_empty();

        let (mut ctxs, max_len, _n_run) = self.chunk_setup(start, horizon, dt);

        let jobs = &mut self.jobs;
        let rng = &mut self.rng;
        let interference = &mut self.interference;
        let mut finished = std::mem::take(&mut self.finished_buf);
        let mut executed = 0u64;
        let mut exit = false;
        'ticks: for t in start..start + max_len {
            let now = t as f64 * dt;
            executed += 1;
            for ctx in ctxs.iter_mut() {
                let job = &mut jobs[ctx.idx];
                let Some(rs) = &mut ctx.run else {
                    job.lifecycle.accrue_gputime(ctx.gpu_dt);
                    continue;
                };
                let eff = job.true_efficiency(rs.batch);
                job.progress += rs.throughput * eff * dt;
                job.examples_processed += rs.tput_dt;
                job.lifecycle.accrue_gputime(ctx.gpu_dt);

                // The agent observes a noisy iteration time (including
                // any interference slowdown, which it cannot
                // distinguish).
                let eps: f64 = rng.gen_range(-noise..=noise);
                rs.obs.observe(rs.t_base * (1.0 + eps));

                if job.progress >= rs.work {
                    job.lifecycle.finish(now + dt);
                    interference.clear_job(ctx.idx, &job.placement);
                    job.placement.iter_mut().for_each(|g| *g = 0);
                    finished.push((ctx.idx, job.spec.id));
                }
            }
            self.node_seconds += node_dt;

            if !finished.is_empty() {
                for &(_, id) in finished.iter() {
                    self.events.push(SchedulingEvent {
                        time: now + dt,
                        job: id,
                        kind: EventKind::Finished,
                        gpus: 0,
                    });
                }
                remove_finished_from_active(&mut self.active, &finished);
                exit = arrivals_empty && self.active.is_empty();
                break 'ticks;
            }
        }

        // Commit the batched profiler observations (including those of
        // jobs that just finished — the reference stepper records up
        // to and including the finish tick too).
        for ctx in ctxs.iter_mut() {
            if let Some(rs) = ctx.run.take() {
                jobs[ctx.idx].agent.record_observation_run(rs.obs);
            }
        }
        ctxs.clear();
        self.chunk_buf = ctxs;
        finished.clear();
        self.finished_buf = finished;

        self.telem.chunks.add(1);
        self.telem.ticks.add(executed);
        self.telem.chunk_ticks.observe(executed);
        if executed < horizon - start {
            // A completion (or its prediction) cut the chunk short of
            // its event horizon.
            self.telem.mid_chunk_aborts.add(1);
        }

        ChunkOutcome {
            ticks: executed,
            exit,
        }
    }

    /// Advances training for one tick — the reference stepper's inner
    /// loop, a faithful retention of the pre-refactor engine's
    /// `advance` body *including its cost profile*: a fresh
    /// interference vector allocated every tick, a scan over every job
    /// (finished ones included), `t_iter`/efficiency recomputed from
    /// scratch, and each noisy sample recorded individually through
    /// the profiler's `BTreeMap`.
    ///
    /// The one departure is bookkeeping the macro path's shared
    /// boundary code requires: finished jobs are also pruned from
    /// `self.active` (the pre-refactor engine had no active index and
    /// re-scanned all jobs instead). That pruning — the same ordered
    /// merge the macro paths use — runs only on finish ticks and never
    /// changes the trajectory.
    fn advance_tick_reference(&mut self, now: f64, dt: f64) {
        let slowdown = self.interference_slowdowns_reference();
        let noise = self.config.measurement_noise;
        let mut finished = Vec::new();
        for (idx, job) in self.jobs.iter_mut().enumerate() {
            match job.state() {
                JobState::Running => {}
                JobState::Restarting { .. } => {
                    let gpu_dt = job.gpus() as f64 * dt;
                    job.lifecycle.accrue_gputime(gpu_dt);
                    continue;
                }
                _ => continue,
            }
            let Some(shape) = job.shape() else { continue };
            let m = job.batch_size;
            let slow = slowdown.get(idx).copied().unwrap_or(0.0);
            let t_iter = job.true_t_iter(shape, m);
            let throughput = (m as f64 / t_iter) * (1.0 - slow);
            let eff = job.true_efficiency(m);
            job.progress += throughput * eff * dt;
            job.examples_processed += throughput * dt;
            job.lifecycle.accrue_gputime(shape.gpus as f64 * dt);

            // The agent observes a noisy iteration time (including any
            // interference slowdown, which it cannot distinguish).
            let eps: f64 = self.rng.gen_range(-noise..=noise);
            let t_obs = t_iter / (1.0 - slow) * (1.0 + eps);
            job.agent.observe_iteration(shape, m, t_obs);

            if job.progress >= job.spec.work {
                job.lifecycle.finish(now + dt);
                self.interference.clear_job(idx, &job.placement);
                job.placement.iter_mut().for_each(|g| *g = 0);
                finished.push((idx, job.spec.id));
            }
        }
        for &(_, id) in finished.iter() {
            self.events.push(SchedulingEvent {
                time: now + dt,
                job: id,
                kind: EventKind::Finished,
                gpus: 0,
            });
        }
        if !finished.is_empty() {
            remove_finished_from_active(&mut self.active, &finished);
        }
    }

    /// The pre-refactor per-tick interference computation, kept
    /// verbatim for the reference stepper: allocates the slowdown
    /// vector fresh and, per node, rescans every job's placement
    /// (recounting its node spread each time) — O(nodes · jobs ·
    /// nodes). Produces exactly the same values as
    /// [`Self::compute_interference`].
    fn interference_slowdowns_reference(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.jobs.len()];
        let factor = self.config.interference_slowdown;
        if factor <= 0.0 {
            return out;
        }
        let n = self.spec.num_nodes();
        for node in 0..n {
            let mut distributed = Vec::new();
            for (i, job) in self.jobs.iter().enumerate() {
                if job.is_finished() || node >= job.placement.len() {
                    continue;
                }
                let nodes_used = job.placement.iter().filter(|&&g| g > 0).count();
                if job.placement[node] > 0 && nodes_used > 1 {
                    distributed.push(i);
                }
            }
            if distributed.len() > 1 {
                for i in distributed {
                    out[i] = factor;
                }
            }
        }
        out
    }

    /// Moves due arrivals into the active job set.
    fn spawn_arrivals(&mut self, now: f64) {
        while let Some((spec, _)) = self.arrivals.last() {
            if spec.submit_time <= now {
                let (spec, user) = self.arrivals.pop().expect("checked non-empty");
                self.active.push(self.jobs.len());
                self.interference.push_job(); // Spawns with no placement.
                let mut job = SimJob::new(spec, user, self.spec.num_nodes());
                if self.recorder.is_enabled() {
                    // The job's lifecycle emits its own transitions
                    // from here on; the arrival instant carries the
                    // submit time, not the macro-step boundary.
                    let id = u64::from(job.spec.id.0);
                    job.lifecycle.attach_telemetry(id, self.recorder.clone());
                    self.recorder.timeline(
                        "lifecycle",
                        "arrival",
                        job.spec.submit_time,
                        id,
                        &[],
                        &[],
                    );
                }
                self.jobs.push(job);
            } else {
                break;
            }
        }
    }

    /// Wakes jobs whose restart delay elapsed.
    fn wake_restarts(&mut self, now: f64) {
        for &i in &self.active {
            self.jobs[i].lifecycle.wake(now);
        }
    }

    /// Agent reporting interval: refresh gradient statistics, refit
    /// θsys when the profile gained information, and re-tune batch
    /// sizes for batch-adaptive policies.
    ///
    /// Runs as a deterministic two-phase round; rounds where the
    /// trigger fires for at least one job (i.e. phase 2 performs real
    /// θsys fits) are timed under an `engine/report_round` span —
    /// emitting the span unconditionally would cost one event per
    /// round (tens of thousands per simulated week) and blow the
    /// recorder's ≤ 5% overhead budget for telemetry-heavy runs, while
    /// no-refit rounds contribute negligibly to the phase anyway.
    ///
    /// 1. *Prepare* (serial, ascending job order): draw the per-job
    ///    φ-noise eps — the RNG stream is identical to the sequential
    ///    path — and evaluate the refit trigger against the profiler
    ///    counts (which the round itself never changes).
    /// 2. *Plan* (parallelizable, `engine_threads`): each job's refit
    ///    and batch-size tune run as a pure
    ///    [`PolluxAgent::plan_report_recorded`] against the frozen
    ///    agent — the expensive θsys fit dominates this phase.
    /// 3. *Commit* (serial, ascending job order): apply each plan's
    ///    `(FitReport, batch_size)`, update the refit bookkeeping, and
    ///    (for non-adaptive policies) consult the policy's batch
    ///    override — policies are never touched off-thread.
    fn report_and_tune(&mut self, _now: f64) {
        let policy = &self.policy;
        let adapt = policy.adapts_batch_size();
        let config = self.config;
        let threads = config.engine_threads.max(1);
        let recorder = &self.recorder;
        let rng = &mut self.rng;
        let jobs = &mut self.jobs;

        // Phase 1: serial RNG draws and trigger evaluation.
        let mut preps: Vec<ReportPrep> = Vec::new();
        for &i in &self.active {
            let job = &jobs[i];
            if !job.is_running() {
                continue;
            }
            // Noisy measurement of the true noise scale, fed to the
            // agent in (variance, |grad|²) form.
            let eps: f64 = rng.gen_range(-config.phi_noise..=config.phi_noise);
            let phi_obs = (job.true_phi() * (1.0 + eps)).max(0.0);
            let stats = GradientStats::new(phi_obs / job.profile.m0 as f64, 1.0);

            // Refit only when the profiler actually learned something
            // substantial, keeping the simulation fast without changing
            // fidelity: between refits the fitted θsys is simply
            // unchanged, which matches a real PolluxAgent whose fit has
            // converged. Batch-size re-tuning adds a new configuration
            // almost every report, so config-triggered refits back off
            // geometrically after the exploration phase.
            let configs = job.agent.profiler().num_configurations();
            let samples = job.agent.profiler().num_samples();
            let config_trigger = configs > job.last_fit_configs
                && (job.last_fit_configs < 8 || configs >= 2 * job.last_fit_configs);
            let sample_trigger = samples >= 4 * job.last_fit_samples.max(1);
            let refit = configs > 0 && (config_trigger || sample_trigger);
            preps.push(ReportPrep {
                idx: i,
                stats,
                refit,
                configs,
                samples,
                tune_shape: if adapt { job.shape() } else { None },
            });
        }

        // Phase 2: pure per-job plans over immutable agents. Inline
        // (no spawns) when `engine_threads <= 1`. Only rounds doing
        // actual fit work are worth a span event (see the doc above).
        let _span = preps
            .iter()
            .any(|p| p.refit)
            .then(|| self.recorder.span("engine", "report_round"));
        let plans: Vec<ReportPlan> = {
            let jobs_ref: &[SimJob] = jobs;
            let preps_ref: &[ReportPrep] = &preps;
            parallel_map(preps_ref.len(), threads, |k| {
                let p = &preps_ref[k];
                jobs_ref[p.idx]
                    .agent
                    .plan_report_recorded(recorder, p.stats, p.refit, p.tune_shape)
            })
        };
        let refits = preps.iter().filter(|p| p.refit).count() as u64;
        if refits > 0 {
            self.telem.refits_parallel.add(refits);
        }

        // Phase 3: serial commit in job order.
        for (p, plan) in preps.iter().zip(&plans) {
            let job = &mut jobs[p.idx];
            if job.agent.commit_report(plan) {
                job.last_fit_configs = p.configs;
                job.last_fit_samples = p.samples;
            }

            if adapt {
                if let Some(d) = plan.tuning {
                    job.batch_size = d.batch_size;
                }
            } else {
                let chosen = policy.choose_batch_size(&job.policy_view());
                if let Some(m) = chosen {
                    if let Some(shape) = job.shape() {
                        if let Some((lo, hi)) = job.profile.limits.range(shape) {
                            job.batch_size = m.clamp(lo, hi);
                        }
                    }
                }
            }
        }
    }

    /// Scheduling interval: one round of the shared control-plane
    /// pipeline. The engine builds views over the active jobs, lets
    /// the [`RoundPlanner`] invoke the policy and diff placements,
    /// then applies each [`Reallocation`] to its job store. The
    /// `PolicyJobView` vector is recycled across intervals (and across
    /// the `desired_nodes` / `plan` calls when no resize happens)
    /// instead of being reallocated and rebuilt per call.
    fn reschedule(&mut self, now: f64) {
        let _span = self.recorder.span("engine", "reschedule");
        // Auto-scaling phase.
        let mut views = take_views(&mut self.view_buf);
        views.extend(self.active.iter().map(|&i| self.jobs[i].policy_view()));
        let desired =
            self.planner
                .desired_nodes(&mut self.policy, now, &views, &self.spec, &mut self.rng);
        if let Some(nodes) = desired {
            // Resizing mutates placements, so the views are rebuilt.
            store_views(&mut self.view_buf, views);
            self.resize_cluster(nodes.max(1), now);
            views = take_views(&mut self.view_buf);
            views.extend(self.active.iter().map(|&i| self.jobs[i].policy_view()));
        }
        let outcome = self
            .planner
            .plan(&mut self.policy, now, &views, &self.spec, &mut self.rng)
            .expect("active jobs have unique ids");
        store_views(&mut self.view_buf, views);
        if let Some(stats) = outcome.stats {
            self.sched_stats.push(stats);
        }
        for r in outcome.reallocations {
            let i = self.active[r.row];
            self.apply_reallocation(i, r, now);
        }
        // Round decision audit: the policy builds it only while a
        // recorder is attached; the engine owns the clock and the
        // post-round node occupancies, so it stamps both here. The
        // audit is observational — nothing below feeds back into
        // scheduling or the digested SimResult.
        if self.recorder.is_enabled() {
            if let Some(mut explain) = self.policy.take_round_explain() {
                explain.time = now;
                for (k, je) in explain.jobs.iter_mut().enumerate() {
                    let i = self.active[k];
                    debug_assert_eq!(
                        je.job,
                        u64::from(self.jobs[i].spec.id.0),
                        "explain rows follow view order"
                    );
                    je.co_residents = self
                        .interference
                        .co_residents(i)
                        .into_iter()
                        .map(|idx| u64::from(self.jobs[idx as usize].spec.id.0))
                        .collect();
                }
                self.recorder.round_explain(explain);
            }
        }
    }

    /// Applies one planned reallocation: the placement row itself, the
    /// engine-owned consequences (agent allocation note, batch-size
    /// clamp), the lifecycle transition, and the timeline event.
    fn apply_reallocation(&mut self, i: usize, r: Reallocation, now: f64) {
        // Index delta from the authoritative old row, before it is
        // overwritten.
        self.interference.apply(i, &self.jobs[i].placement, &r.new);
        let job = &mut self.jobs[i];
        debug_assert_eq!(job.spec.id, r.job, "view order matches active order");
        job.placement = r.new;
        let event_kind;
        let event_gpus;
        if let Some(shape) = job.shape() {
            job.agent.note_allocation(shape);

            // Clamp the batch size into the feasible range for the
            // new placement (a batch tuned for many GPUs may not
            // fit on few).
            if let Some((lo, hi)) = job.profile.limits.range(shape) {
                job.batch_size = job.batch_size.clamp(lo, hi);
            }

            job.lifecycle
                .grant(r.triggers_restart, now, self.config.restart_delay);
            if r.triggers_restart {
                self.restarts_total += 1;
                event_kind = EventKind::Restarted;
            } else {
                event_kind = EventKind::Started;
            }
            event_gpus = shape.gpus;
        } else {
            // Preempted: progress is checkpointed, the job waits. The
            // planner only emits zero-GPU decisions for placed jobs.
            job.lifecycle.preempt(now);
            event_kind = EventKind::Preempted;
            event_gpus = 0;
        }
        self.events.push(SchedulingEvent {
            time: now,
            job: r.job,
            kind: event_kind,
            gpus: event_gpus,
        });
    }

    /// Resizes the cluster to `nodes` homogeneous nodes, preempting
    /// jobs that held GPUs on removed nodes.
    fn resize_cluster(&mut self, nodes: u32, now: f64) {
        let old_n = self.spec.num_nodes();
        let new_n = nodes as usize;
        if new_n == old_n {
            return;
        }
        let gpus_per_node = self.spec.gpus_on(NodeId(0));
        self.spec =
            ClusterSpec::homogeneous(nodes, gpus_per_node).expect("nodes >= 1 enforced by caller");
        for job in &mut self.jobs {
            if job.is_finished() {
                job.placement.resize(new_n, 0);
                continue;
            }
            let loses_gpus = job.placement.iter().skip(new_n).any(|&g| g > 0);
            job.placement.resize(new_n, 0);
            if loses_gpus {
                // The whole job is preempted (partial placements would
                // change its world silently).
                job.placement.iter_mut().for_each(|g| *g = 0);
                job.lifecycle.preempt(now);
            }
        }
        // Placements were edited wholesale, bypassing the index's
        // delta updates: rebuild it from the rows now in effect.
        self.interference
            .rebuild(new_n, self.jobs.iter().map(|j| j.placement.as_slice()));
        if self.config.nodes_per_rack > 0 {
            if let Some(topo) = Topology::grouped(nodes, self.config.nodes_per_rack) {
                self.policy.configure_topology(Some(&topo));
            }
        }
    }

    /// Refreshes the per-job interference buffer: when two or more
    /// *distributed* jobs occupy one node, all of them are slowed
    /// (Sec. 4.2.1 / Fig 9). Served by the incremental
    /// [`InterferenceIndex`] — O(nodes + occupancy) per macro-step
    /// instead of rescanning every active placement — and cross-checked
    /// against the full rescan in debug builds.
    fn compute_interference(&mut self) {
        self.telem.interference_recomputes.add(1);
        self.slowdown.clear();
        self.slowdown.resize(self.jobs.len(), 0.0);
        let factor = self.config.interference_slowdown;
        if factor <= 0.0 {
            return;
        }
        self.interference.mark_slowdowns(factor, &mut self.slowdown);
        debug_assert_eq!(
            self.slowdown,
            self.interference_slowdowns_reference(),
            "incremental interference index diverged from the full rescan"
        );
    }

    /// Records one cluster-state sample.
    fn sample(&mut self, now: f64) {
        let mut used = 0u32;
        let mut running = 0u32;
        let mut pending = 0u32;
        let mut eff_sum = 0.0;
        let mut tput = 0.0;
        let mut goodput = 0.0;
        for &i in &self.active {
            let job = &self.jobs[i];
            match job.state() {
                JobState::Running | JobState::Restarting { .. } => {
                    used += job.gpus();
                }
                _ => {}
            }
            match job.state() {
                JobState::Running => {
                    running += 1;
                    if let Some(shape) = job.shape() {
                        let e = job.true_efficiency(job.batch_size);
                        let t = job.true_throughput(shape, job.batch_size);
                        eff_sum += e;
                        tput += t;
                        goodput += t * e;
                    }
                }
                JobState::Pending => pending += 1,
                _ => {}
            }
        }
        if self.config.record_job_series {
            for &i in &self.active {
                let job = &self.jobs[i];
                self.job_series.push(JobSample {
                    time: now,
                    job: job.spec.id,
                    gpus: job.gpus(),
                    batch_size: job.batch_size,
                    progress: job.progress_fraction(),
                });
            }
        }
        let mean_efficiency = if running > 0 {
            eff_sum / running as f64
        } else {
            0.0
        };
        self.series.push(ClusterSample {
            time: now,
            nodes: self.spec.num_nodes() as u32,
            total_gpus: self.spec.total_gpus(),
            used_gpus: used,
            running_jobs: running,
            pending_jobs: pending,
            mean_efficiency,
            total_throughput: tput,
            total_goodput: goodput,
        });
        // The per-interval cluster time-series: values copied from the
        // sample just recorded, never computed differently for
        // telemetry (determinism contract).
        self.recorder.point(
            "engine",
            "cluster_sample",
            now,
            &[
                ("goodput", goodput),
                ("throughput", tput),
                ("mean_efficiency", mean_efficiency),
                ("used_gpus", used as f64),
                ("total_gpus", self.spec.total_gpus() as f64),
                ("running_jobs", running as f64),
                ("pending_jobs", pending as f64),
                ("restarts", self.restarts_total as f64),
            ],
        );
    }

    /// Builds the final result. Flushes the recorder first so counter
    /// and histogram snapshots land in the capture.
    fn finalize(self, end_time: f64) -> SimResult {
        self.recorder.flush();
        let records = self
            .jobs
            .iter()
            .map(|job| JobRecord {
                id: job.spec.id,
                kind: job.spec.kind,
                submit_time: job.spec.submit_time,
                start_time: job.start_time(),
                finish_time: job.lifecycle.finish_time(),
                gputime: job.gputime(),
                num_restarts: job.num_restarts(),
                examples_processed: job.examples_processed,
                useful_examples: job.progress,
            })
            .collect();
        SimResult {
            policy: self.policy.name().to_string(),
            records,
            series: self.series,
            events: self.events,
            job_series: self.job_series,
            end_time,
            node_seconds: self.node_seconds,
            sched_stats: self.sched_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_cluster::{AllocationMatrix, JobId};
    use pollux_workload::{ModelKind, TraceConfig, TraceGenerator};

    /// A trivial policy: every active job gets `gpus` GPUs packed onto
    /// the fewest nodes, first-come-first-served.
    struct FcfsPacked {
        gpus: u32,
    }

    impl SchedulingPolicy for FcfsPacked {
        fn name(&self) -> &'static str {
            "fcfs-packed"
        }

        fn schedule(
            &mut self,
            _now: f64,
            jobs: &[PolicyJobView<'_>],
            spec: &ClusterSpec,
            _rng: &mut StdRng,
        ) -> AllocationMatrix {
            let mut free: Vec<u32> = spec.iter().map(|(_, s)| s.gpus).collect();
            let mut m = AllocationMatrix::zeros(jobs.len(), spec.num_nodes());
            for (j, view) in jobs.iter().enumerate() {
                // Keep an existing placement untouched.
                if view.is_running() {
                    for (n, &g) in view.current_placement.iter().enumerate() {
                        m.set(j, n, g);
                        free[n] = free[n].saturating_sub(g);
                    }
                    continue;
                }
                let mut need = self.gpus;
                for (n, f) in free.iter_mut().enumerate() {
                    if need == 0 {
                        break;
                    }
                    let take = need.min(*f);
                    if take > 0 {
                        m.set(j, n, take);
                        *f -= take;
                        need -= take;
                    }
                }
                if need > 0 {
                    // Could not fully place: back out.
                    for (n, f) in free.iter_mut().enumerate() {
                        *f += m.get(j, n);
                        m.set(j, n, 0);
                    }
                }
            }
            m
        }
    }

    fn small_workload(n: usize) -> Vec<Submission> {
        let trace = TraceGenerator::new(TraceConfig {
            num_jobs: 40,
            seed: 3,
            ..Default::default()
        })
        .unwrap()
        .generate();
        trace
            .into_iter()
            .filter(|j| j.kind == ModelKind::ResNet18Cifar10 || j.kind == ModelKind::NeuMFMovieLens)
            .take(n)
            .enumerate()
            .map(|(i, mut spec)| {
                spec.id = JobId(i as u32);
                spec.submit_time = i as f64 * 30.0;
                let user = spec.tuned;
                (spec, user)
            })
            .collect()
    }

    fn quick_config() -> SimConfig {
        SimConfig {
            tick_seconds: 1.0,
            max_sim_time: 12.0 * 3600.0,
            ..Default::default()
        }
    }

    #[test]
    fn rejects_empty_workload() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        assert!(Simulation::new(quick_config(), spec, FcfsPacked { gpus: 1 }, vec![]).is_none());
    }

    #[test]
    fn rejects_non_finite_submit_times() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut wl = small_workload(3);
            wl[1].0.submit_time = bad;
            assert!(
                Simulation::new(quick_config(), spec.clone(), FcfsPacked { gpus: 1 }, wl).is_none(),
                "submit_time {bad} must be rejected"
            );
        }
        // Negative-but-finite submit times stay legal (spawn at t=0).
        let mut wl = small_workload(3);
        wl[1].0.submit_time = -5.0;
        assert!(Simulation::new(quick_config(), spec, FcfsPacked { gpus: 1 }, wl).is_some());
    }

    #[test]
    fn tick_search_is_exact() {
        for (time, dt, lo, want) in [
            (0.0, 1.0, 1, 1),
            (29.5, 1.0, 1, 30),
            (30.0, 1.0, 1, 30),
            (30.0, 1.0, 31, 31),
            (-4.0, 1.0, 1, 1),
            (0.3, 0.1, 1, 3),
            (1.0e30, 1.0, 1, u64::MAX),
        ] {
            assert_eq!(
                first_tick_at_or_after(time, dt, lo),
                want,
                "time {time} dt {dt} lo {lo}"
            );
        }
        // Exactness against accumulated float error: the first tick at
        // or after k·dt must be exactly k for awkward dt values.
        let dt = 0.1;
        for k in [3u64, 7, 10, 1000, 999_983] {
            let t = first_tick_at_or_after(k as f64 * dt, dt, 1);
            assert_eq!(t, t.max(1));
            assert!((t as f64) * dt >= k as f64 * dt);
            assert!(t == 0 || ((t - 1) as f64) * dt < k as f64 * dt);
        }
    }

    #[test]
    fn all_small_jobs_finish() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let wl = small_workload(6);
        assert_eq!(wl.len(), 6);
        let sim = Simulation::new(quick_config(), spec, FcfsPacked { gpus: 2 }, wl).unwrap();
        let res = sim.run();
        assert_eq!(res.records.len(), 6);
        assert_eq!(res.unfinished(), 0, "records: {:#?}", res.records);
        for r in &res.records {
            let jct = r.jct().unwrap();
            assert!(jct > 0.0 && jct < 12.0 * 3600.0);
            assert!(r.gputime > 0.0);
            assert!(r.examples_processed >= r.useful_examples);
        }
        assert!(res.avg_jct().unwrap() > 0.0);
        assert!(res.makespan() > 0.0);
        assert!(res.node_seconds > 0.0);
    }

    #[test]
    fn no_oversubscription_in_series() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let wl = small_workload(8);
        let sim = Simulation::new(quick_config(), spec, FcfsPacked { gpus: 2 }, wl).unwrap();
        let res = sim.run();
        for s in &res.series {
            assert!(s.used_gpus <= s.total_gpus, "{s:?}");
            assert!(s.mean_efficiency >= 0.0 && s.mean_efficiency <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn jobs_queue_when_cluster_full() {
        // 1 node x 4 GPUs, 4 jobs needing 4 GPUs each: they must run
        // mostly sequentially, so later JCTs exceed earlier ones.
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let mut wl = small_workload(4);
        for (s, _) in wl.iter_mut() {
            s.submit_time = 0.0;
        }
        let sim = Simulation::new(quick_config(), spec, FcfsPacked { gpus: 4 }, wl).unwrap();
        let res = sim.run();
        assert_eq!(res.unfinished(), 0);
        let mut jcts: Vec<f64> = res.records.iter().map(|r| r.jct().unwrap()).collect();
        let max = jcts.iter().cloned().fold(0.0, f64::max);
        jcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // The last job's JCT is at least ~2x the first one's.
        assert!(max > 2.0 * jcts[0], "jcts: {jcts:?}");
    }

    #[test]
    fn job_series_recording() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let wl = small_workload(3);
        let mut cfg = quick_config();
        cfg.record_job_series = true;
        let res = Simulation::new(cfg, spec, FcfsPacked { gpus: 2 }, wl)
            .unwrap()
            .run();
        assert!(!res.job_series.is_empty());
        for r in &res.records {
            let series = res.job_series_of(r.id);
            assert!(!series.is_empty(), "no samples for {}", r.id);
            // Progress is monotone and ends near 1 for finished jobs.
            for w in series.windows(2) {
                assert!(w[0].time <= w[1].time);
                assert!(w[0].progress <= w[1].progress + 1e-12);
            }
        }
        // Off by default: no samples.
        let res2 = Simulation::new(
            quick_config(),
            ClusterSpec::homogeneous(2, 4).unwrap(),
            FcfsPacked { gpus: 2 },
            small_workload(3),
        )
        .unwrap()
        .run();
        assert!(res2.job_series.is_empty());
    }

    #[test]
    fn agents_learn_during_simulation() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let wl = small_workload(2);
        let sim = Simulation::new(quick_config(), spec, FcfsPacked { gpus: 2 }, wl).unwrap();
        // Drive manually to inspect the job state: run and check records
        // got gputime; agent internals are covered by unit tests.
        let res = sim.run();
        assert!(res.records.iter().all(|r| r.gputime > 0.0));
        // Efficiency below 1 because tuned batches exceed m0.
        let eff = res.avg_cluster_efficiency().unwrap();
        assert!(eff > 0.3 && eff <= 1.0, "eff = {eff}");
    }

    /// Policy that re-places every job on alternating nodes each
    /// interval, to exercise restart accounting.
    struct Shuffler;
    impl SchedulingPolicy for Shuffler {
        fn name(&self) -> &'static str {
            "shuffler"
        }
        fn schedule(
            &mut self,
            now: f64,
            jobs: &[PolicyJobView<'_>],
            spec: &ClusterSpec,
            _rng: &mut StdRng,
        ) -> AllocationMatrix {
            let mut m = AllocationMatrix::zeros(jobs.len(), spec.num_nodes());
            let phase = ((now / 60.0) as usize) % spec.num_nodes();
            for j in 0..jobs.len().min(1) {
                m.set(j, phase, 1);
            }
            m
        }
    }

    #[test]
    fn restarts_are_counted_and_slow_jobs_down() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let wl = small_workload(1);
        let sim = Simulation::new(quick_config(), spec, Shuffler, wl.clone()).unwrap();
        let res = sim.run();
        let r = &res.records[0];
        assert!(r.num_restarts > 2, "restarts = {}", r.num_restarts);

        // The same job without shuffling finishes faster.
        let sim2 =
            Simulation::new(quick_config(), spec_clone(), FcfsPacked { gpus: 1 }, wl).unwrap();
        let res2 = sim2.run();
        assert!(
            res2.records[0].jct().unwrap() < r.jct().unwrap(),
            "stable {:?} vs shuffled {:?}",
            res2.records[0].jct(),
            r.jct()
        );

        fn spec_clone() -> ClusterSpec {
            ClusterSpec::homogeneous(2, 4).unwrap()
        }
    }

    /// Policy pinning two distributed jobs onto overlapping nodes, to
    /// exercise interference injection.
    struct Overlapper;
    impl SchedulingPolicy for Overlapper {
        fn name(&self) -> &'static str {
            "overlapper"
        }
        fn schedule(
            &mut self,
            _now: f64,
            jobs: &[PolicyJobView<'_>],
            spec: &ClusterSpec,
            _rng: &mut StdRng,
        ) -> AllocationMatrix {
            let mut m = AllocationMatrix::zeros(jobs.len(), spec.num_nodes());
            for j in 0..jobs.len().min(2) {
                // Both jobs span nodes 0 and 1.
                m.set(j, 0, 1);
                m.set(j, 1, 1);
            }
            m
        }
    }

    #[test]
    fn interference_slows_overlapping_distributed_jobs() {
        let wl = small_workload(2);
        let mut cfg = quick_config();
        cfg.interference_slowdown = 0.5;
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let slow = Simulation::new(cfg, spec.clone(), Overlapper, wl.clone())
            .unwrap()
            .run();
        let mut cfg2 = quick_config();
        cfg2.interference_slowdown = 0.0;
        let fast = Simulation::new(cfg2, spec, Overlapper, wl).unwrap().run();
        let s = slow.avg_jct().unwrap();
        let f = fast.avg_jct().unwrap();
        // A 50% slowdown must cost well over 20% end-to-end (it is
        // diluted by solo-running and restart phases).
        assert!(s > 1.2 * f, "interfered {s} vs clean {f}");
    }
}
