//! Incremental interference index.
//!
//! The paper's interference rule (Sec. 4.2.1 / Fig 9): a *distributed*
//! job (one spanning ≥ 2 nodes) is slowed by a fixed factor whenever
//! it shares any node with another distributed job. The engine
//! recomputed eligibility from scratch each macro-step by rescanning
//! every active placement — O(active · nodes), which dominates at
//! datacenter scale where chunks are short and placements sparse.
//!
//! [`InterferenceIndex`] maintains the two facts the rule needs — the
//! occupant set of every node and each job's occupied-node count —
//! updated incrementally from the same placement deltas the engine
//! already applies ([`apply`](InterferenceIndex::apply) on a
//! reallocation, [`clear_job`](InterferenceIndex::clear_job) on
//! finish, [`rebuild`](InterferenceIndex::rebuild) after a cluster
//! resize). Query cost is O(nodes + occupancy) per macro-step and
//! update cost O(changed cells) per round, independent of job count.
//!
//! Invalidation rules (who must call what):
//! - job spawned → [`push_job`](InterferenceIndex::push_job) (jobs
//!   enter with an empty placement);
//! - placement row replaced → [`apply`](InterferenceIndex::apply)
//!   with the old and new rows, *before* the row is overwritten;
//! - job finished → [`clear_job`](InterferenceIndex::clear_job) with
//!   the final row, *before* the row is zeroed;
//! - cluster resized (placements truncated/zeroed wholesale) →
//!   [`rebuild`](InterferenceIndex::rebuild) from all rows.
//!
//! The `sparse_equiv` proptest suite pins this index against the full
//! rescan over random reallocation streams; a debug assertion in the
//! engine cross-checks every macro-step in debug builds.

/// Per-node occupant sets plus per-job occupied-node counts.
#[derive(Debug, Clone, Default)]
pub struct InterferenceIndex {
    /// `occupants[n]` — indices of jobs holding ≥ 1 GPU on node `n`,
    /// ascending.
    occupants: Vec<Vec<u32>>,
    /// `nodes_held[j]` — number of nodes on which job `j` holds GPUs.
    nodes_held: Vec<u32>,
}

impl InterferenceIndex {
    /// An empty index over `num_nodes` nodes and no jobs.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            occupants: vec![Vec::new(); num_nodes],
            nodes_held: Vec::new(),
        }
    }

    /// Registers a new job (with an empty placement); job indices are
    /// assigned densely in call order and never reused.
    pub fn push_job(&mut self) {
        self.nodes_held.push(0);
    }

    /// Number of tracked jobs.
    pub fn num_jobs(&self) -> usize {
        self.nodes_held.len()
    }

    /// Number of nodes job `j` currently occupies.
    pub fn nodes_held(&self, j: usize) -> u32 {
        self.nodes_held[j]
    }

    /// Applies a placement change for job `j`: `old` is the row in
    /// effect (the engine's authoritative copy, read before it is
    /// overwritten), `new` the row being applied. Rows may differ in
    /// width; missing cells count as zero. O(changed cells occupied on
    /// either side) plus the occupant-set edits.
    pub fn apply(&mut self, j: usize, old: &[u32], new: &[u32]) {
        let len = old.len().max(new.len());
        if len > self.occupants.len() {
            self.occupants.resize(len, Vec::new());
        }
        for n in 0..len {
            let was = old.get(n).copied().unwrap_or(0) > 0;
            let is = new.get(n).copied().unwrap_or(0) > 0;
            if was == is {
                continue;
            }
            if is {
                self.insert(n, j);
                self.nodes_held[j] += 1;
            } else {
                self.remove(n, j);
                self.nodes_held[j] -= 1;
            }
        }
    }

    /// Removes job `j` from every node of `row` (its final placement,
    /// read before the engine zeroes it) — the finish-path fast form
    /// of `apply(j, row, &[])`.
    pub fn clear_job(&mut self, j: usize, row: &[u32]) {
        for (n, &g) in row.iter().enumerate() {
            if g > 0 {
                self.remove(n, j);
            }
        }
        self.nodes_held[j] = 0;
    }

    /// Rebuilds the index from scratch over `num_nodes` nodes and the
    /// given placement rows (one per job, in job-index order). Used
    /// after bulk placement edits — a cluster resize truncates and
    /// zeroes rows without going through `apply`.
    pub fn rebuild<'a, I>(&mut self, num_nodes: usize, rows: I)
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        self.occupants.clear();
        self.occupants.resize(num_nodes, Vec::new());
        self.nodes_held.clear();
        for (j, row) in rows.into_iter().enumerate() {
            let mut held = 0;
            for (n, &g) in row.iter().enumerate() {
                if g > 0 && n < num_nodes {
                    self.occupants[n].push(j as u32);
                    held += 1;
                }
            }
            self.nodes_held.push(held);
        }
    }

    /// Writes the interference slowdown of every job into `out`
    /// (already sized to the job count and zeroed): a job gets
    /// `factor` iff it is distributed (≥ 2 nodes held) and some node
    /// it occupies hosts ≥ 2 distributed jobs. Produces exactly the
    /// values of the engine's full placement rescan.
    pub fn mark_slowdowns(&self, factor: f64, out: &mut [f64]) {
        for occ in &self.occupants {
            let distributed = |j: &&u32| self.nodes_held[**j as usize] > 1;
            if occ.iter().filter(distributed).take(2).count() > 1 {
                for &j in occ.iter().filter(distributed) {
                    out[j as usize] = factor;
                }
            }
        }
    }

    /// The jobs sharing at least one node with job `j`, ascending and
    /// deduplicated. O(occupancy of j's nodes); used by the round
    /// audit to report interference co-residents, never by the
    /// scheduling hot path.
    pub fn co_residents(&self, j: usize) -> Vec<u32> {
        let j = j as u32;
        let mut out: Vec<u32> = self
            .occupants
            .iter()
            .filter(|occ| occ.binary_search(&j).is_ok())
            .flat_map(|occ| occ.iter().copied().filter(|&o| o != j))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn insert(&mut self, n: usize, j: usize) {
        let occ = &mut self.occupants[n];
        let j = j as u32;
        if let Err(i) = occ.binary_search(&j) {
            occ.insert(i, j);
        }
    }

    fn remove(&mut self, n: usize, j: usize) {
        let occ = &mut self.occupants[n];
        if let Ok(i) = occ.binary_search(&(j as u32)) {
            occ.remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slowdowns(ix: &InterferenceIndex, factor: f64) -> Vec<f64> {
        let mut out = vec![0.0; ix.num_jobs()];
        ix.mark_slowdowns(factor, &mut out);
        out
    }

    #[test]
    fn two_distributed_jobs_sharing_a_node_interfere() {
        let mut ix = InterferenceIndex::new(3);
        ix.push_job();
        ix.push_job();
        ix.push_job();
        ix.apply(0, &[0, 0, 0], &[1, 1, 0]); // distributed on {0,1}
        ix.apply(1, &[0, 0, 0], &[0, 1, 1]); // distributed on {1,2}
        ix.apply(2, &[0, 0, 0], &[2, 0, 0]); // colocated on {0}
        assert_eq!(slowdowns(&ix, 0.3), vec![0.3, 0.3, 0.0]);
    }

    #[test]
    fn colocated_jobs_never_interfere() {
        let mut ix = InterferenceIndex::new(2);
        ix.push_job();
        ix.push_job();
        ix.apply(0, &[0, 0], &[4, 0]);
        ix.apply(1, &[0, 0], &[4, 0]);
        assert_eq!(slowdowns(&ix, 0.3), vec![0.0, 0.0]);
    }

    #[test]
    fn clearing_a_job_removes_its_interference() {
        let mut ix = InterferenceIndex::new(2);
        ix.push_job();
        ix.push_job();
        ix.apply(0, &[0, 0], &[1, 1]);
        ix.apply(1, &[0, 0], &[1, 1]);
        assert_eq!(slowdowns(&ix, 0.5), vec![0.5, 0.5]);
        ix.clear_job(1, &[1, 1]);
        assert_eq!(slowdowns(&ix, 0.5), vec![0.0, 0.0]);
        assert_eq!(ix.nodes_held(1), 0);
    }

    #[test]
    fn apply_handles_width_mismatch_as_zero_padding() {
        let mut ix = InterferenceIndex::new(2);
        ix.push_job();
        ix.apply(0, &[], &[1, 1]);
        assert_eq!(ix.nodes_held(0), 2);
        ix.apply(0, &[1, 1], &[2]);
        assert_eq!(ix.nodes_held(0), 1);
    }

    #[test]
    fn co_residents_lists_node_sharers_once() {
        let mut ix = InterferenceIndex::new(3);
        for _ in 0..3 {
            ix.push_job();
        }
        ix.apply(0, &[0, 0, 0], &[1, 1, 0]);
        ix.apply(1, &[0, 0, 0], &[2, 2, 0]); // shares nodes 0 AND 1 with job 0
        ix.apply(2, &[0, 0, 0], &[0, 0, 4]); // alone on node 2
        assert_eq!(ix.co_residents(0), vec![1]);
        assert_eq!(ix.co_residents(1), vec![0]);
        assert_eq!(ix.co_residents(2), Vec::<u32>::new());
    }

    #[test]
    fn rebuild_matches_incremental_state() {
        let rows: Vec<Vec<u32>> = vec![vec![1, 1, 0], vec![0, 2, 1], vec![0, 0, 0]];
        let mut incremental = InterferenceIndex::new(3);
        for row in &rows {
            incremental.push_job();
            let j = incremental.num_jobs() - 1;
            incremental.apply(j, &[0, 0, 0], row);
        }
        let mut rebuilt = InterferenceIndex::new(3);
        rebuilt.rebuild(3, rows.iter().map(|r| r.as_slice()));
        assert_eq!(slowdowns(&incremental, 0.3), slowdowns(&rebuilt, 0.3),);
        assert_eq!(incremental.nodes_held(0), rebuilt.nodes_held(0));
    }
}
