//! Simulated job state.

use crate::policy::PolicyJobView;
use pollux_agent::PolluxAgent;
use pollux_models::{EfficiencyModel, PlacementShape};
use pollux_workload::{JobSpec, ModelProfile, UserConfig};

pub use pollux_control::{JobLifecycle, JobState};

/// One job inside the simulation: ground truth + the agent's noisy view.
///
/// Lifecycle state (pending/running/restarting/finished, restart and
/// GPU-time accounting) lives in the shared control-plane
/// [`JobLifecycle`] — the same state machine the live `ClusterService`
/// drives — while this struct adds the simulation-only ground truth:
/// the model profile, training progress, and the noisy-profiled agent.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// The submission record (model, submit time, total work, user
    /// configurations).
    pub spec: JobSpec,
    /// The user configuration in effect for this run (tuned or
    /// realistic, chosen by the experiment).
    pub user: UserConfig,
    /// Ground-truth model profile. **Scheduler code must not read
    /// this**; it exists for the simulator to generate measurements.
    pub profile: ModelProfile,
    /// The job's `PolluxAgent` (profiles, fits, tunes).
    pub agent: PolluxAgent,
    /// Shared lifecycle state machine (state, start time, restarts,
    /// attained GPU-time).
    pub lifecycle: JobLifecycle,
    /// Current placement row (GPUs per node), cluster-width.
    pub placement: Vec<u32>,
    /// Current total batch size.
    pub batch_size: u64,
    /// Accumulated useful work (examples at m0-efficiency).
    pub progress: f64,
    /// Accumulated raw examples processed (for throughput accounting).
    pub examples_processed: f64,
    /// Fit bookkeeping: configurations seen at the last refit.
    pub(crate) last_fit_configs: usize,
    /// Fit bookkeeping: samples seen at the last refit.
    pub(crate) last_fit_samples: u64,
}

impl SimJob {
    /// Creates a pending job from its submission spec and the chosen
    /// user configuration.
    pub fn new(spec: JobSpec, user: UserConfig, num_nodes: usize) -> Self {
        let profile = spec.kind.profile();
        let agent = PolluxAgent::new(profile.m0, profile.eta0, profile.limits)
            .expect("profile constants are valid");
        let batch_size = user.batch_size.max(profile.m0);
        Self {
            spec,
            user,
            profile,
            agent,
            lifecycle: JobLifecycle::new(),
            placement: vec![0; num_nodes],
            batch_size,
            progress: 0.0,
            examples_processed: 0.0,
            last_fit_configs: 0,
            last_fit_samples: 0,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        self.lifecycle.state()
    }

    /// Attained GPU-time in GPU-seconds.
    pub fn gputime(&self) -> f64 {
        self.lifecycle.gputime()
    }

    /// First time the job received GPUs.
    pub fn start_time(&self) -> Option<f64> {
        self.lifecycle.start_time()
    }

    /// Number of checkpoint-restarts suffered.
    pub fn num_restarts(&self) -> u32 {
        self.lifecycle.num_restarts()
    }

    /// Whether the job has finished.
    pub fn is_finished(&self) -> bool {
        self.lifecycle.is_finished()
    }

    /// Whether the job is actively making progress.
    pub fn is_running(&self) -> bool {
        self.lifecycle.is_running()
    }

    /// The read-only view of this job handed to scheduling policies.
    pub fn policy_view(&self) -> PolicyJobView<'_> {
        PolicyJobView {
            id: self.spec.id,
            user: self.user,
            profile: Some(&self.profile),
            limits: self.profile.limits,
            report: self.agent.report(),
            gputime: self.lifecycle.gputime(),
            submit_time: self.spec.submit_time,
            current_placement: &self.placement,
            started: self.lifecycle.has_started(),
            batch_size: self.batch_size,
            remaining_work: self.remaining_work(),
        }
    }

    /// The job's current placement shape, if it holds any GPUs.
    pub fn shape(&self) -> Option<PlacementShape> {
        let gpus: u32 = self.placement.iter().sum();
        if gpus == 0 {
            return None;
        }
        let nodes = self.placement.iter().filter(|&&g| g > 0).count() as u32;
        PlacementShape::new(gpus, nodes)
    }

    /// GPUs currently held.
    pub fn gpus(&self) -> u32 {
        self.placement.iter().sum()
    }

    /// Normalized training progress in [0, 1].
    pub fn progress_fraction(&self) -> f64 {
        (self.progress / self.spec.work).clamp(0.0, 1.0)
    }

    /// Remaining work in examples at m0-efficiency (oracle quantity,
    /// exposed to Optimus+Oracle per Sec. 5.2).
    pub fn remaining_work(&self) -> f64 {
        (self.spec.work - self.progress).max(0.0)
    }

    /// The **true** gradient noise scale at the current progress.
    pub fn true_phi(&self) -> f64 {
        self.profile.phi_at(self.progress_fraction())
    }

    /// The **true** statistical efficiency at batch size `m` right now.
    pub fn true_efficiency(&self, m: u64) -> f64 {
        self.true_efficiency_at(self.progress, m)
    }

    /// [`true_efficiency`](Self::true_efficiency) evaluated at a
    /// caller-supplied progress value instead of the stored one. The
    /// job-major engine advances progress in a thread-private register
    /// across a whole chunk and needs the efficiency curve at each
    /// intermediate value; the operations are identical to the
    /// stored-progress path, so feeding back the same progress yields
    /// the same bits.
    pub fn true_efficiency_at(&self, progress: f64, m: u64) -> f64 {
        let frac = (progress / self.spec.work).clamp(0.0, 1.0);
        EfficiencyModel::from_noise_scale(self.profile.m0, self.profile.phi_at(frac))
            .expect("phi > 0 from the profile")
            .efficiency(m)
    }

    /// The **true** iteration time under `shape` at batch `m`
    /// (before any interference slowdown).
    pub fn true_t_iter(&self, shape: PlacementShape, m: u64) -> f64 {
        self.profile.params.t_iter(shape, m)
    }

    /// The **true** throughput (examples/s) under `shape` at batch `m`.
    pub fn true_throughput(&self, shape: PlacementShape, m: u64) -> f64 {
        self.profile.params.throughput(shape, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_cluster::JobId;
    use pollux_workload::{ModelKind, TraceConfig, TraceGenerator};

    fn sample_job() -> SimJob {
        let trace = TraceGenerator::new(TraceConfig::default())
            .unwrap()
            .generate();
        let spec = trace
            .iter()
            .find(|j| j.kind == ModelKind::ResNet18Cifar10)
            .unwrap()
            .clone();
        let user = spec.tuned;
        SimJob::new(spec, user, 4)
    }

    #[test]
    fn new_job_is_pending_and_unplaced() {
        let j = sample_job();
        assert_eq!(j.state(), JobState::Pending);
        assert_eq!(j.shape(), None);
        assert_eq!(j.gpus(), 0);
        assert_eq!(j.progress_fraction(), 0.0);
        assert!(!j.is_finished());
        assert!(!j.is_running());
        assert!(j.remaining_work() > 0.0);
        assert_eq!(j.spec.id, JobId(j.spec.id.0)); // id round-trips
    }

    #[test]
    fn shape_tracks_placement() {
        let mut j = sample_job();
        j.placement = vec![2, 0, 1, 0];
        assert_eq!(j.shape(), PlacementShape::new(3, 2));
        assert_eq!(j.gpus(), 3);
    }

    #[test]
    fn batch_size_never_below_m0() {
        let trace = TraceGenerator::new(TraceConfig::default())
            .unwrap()
            .generate();
        let spec = trace[0].clone();
        let m0 = spec.kind.profile().m0;
        let user = UserConfig {
            gpus: 1,
            batch_size: 1,
        };
        let j = SimJob::new(spec, user, 4);
        assert_eq!(j.batch_size, m0);
    }

    #[test]
    fn true_phi_rises_with_progress() {
        let mut j = sample_job();
        let early = j.true_phi();
        j.progress = j.spec.work * 0.9;
        let late = j.true_phi();
        assert!(late > early);
        // Efficiency at a big batch improves accordingly.
        assert!(j.true_efficiency(4096) > 0.0);
    }

    #[test]
    fn progress_fraction_clamps() {
        let mut j = sample_job();
        j.progress = j.spec.work * 2.0;
        assert_eq!(j.progress_fraction(), 1.0);
        assert_eq!(j.remaining_work(), 0.0);
    }

    #[test]
    fn truth_matches_profile_params() {
        let j = sample_job();
        let shape = PlacementShape::new(4, 1).unwrap();
        assert_eq!(
            j.true_t_iter(shape, 512),
            j.profile.params.t_iter(shape, 512)
        );
        assert_eq!(
            j.true_throughput(shape, 512),
            j.profile.params.throughput(shape, 512)
        );
    }

    #[test]
    fn view_reflects_job_state() {
        let mut job = sample_job();
        job.placement = vec![0, 2, 0, 0];
        job.lifecycle.accrue_gputime(120.0);
        job.progress = job.spec.work / 2.0;

        let v = job.policy_view();
        assert_eq!(v.id, job.spec.id);
        assert!(v.is_running());
        assert!(!v.started, "GPUs held but never granted through a round");
        assert_eq!(v.gputime, 120.0);
        assert!((v.remaining_work - job.spec.work / 2.0).abs() < 1e-6);
        assert!(v.report.is_none(), "no fit yet");
    }

    #[test]
    fn view_report_appears_after_fit() {
        let mut job = sample_job();
        let shape = PlacementShape::single();
        let t = job.true_t_iter(shape, job.profile.m0);
        job.agent.observe_iteration(shape, job.profile.m0, t);
        assert!(job.agent.refit());
        let v = job.policy_view();
        assert!(v.report.is_some());
    }
}
