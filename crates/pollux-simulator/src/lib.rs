//! Discrete-time DL cluster simulator (Sec. 5.3).
//!
//! Mirrors the paper's methodology: each simulated job carries a
//! ground-truth profile (true θsys + φ(progress) trajectory from
//! `pollux-workload`); the scheduler under test only ever sees noisy
//! profiled measurements through a real `PolluxAgent`. The simulator
//! reproduces:
//!
//! - placement-sensitive system throughput (co-located vs cross-node
//!   synchronization);
//! - statistical efficiency and its change across each job's lifetime
//!   ("statistical epoch" progress accounting);
//! - 30-second checkpoint-restart delays on re-allocation;
//! - optional network-interference slowdown when multiple distributed
//!   jobs share a node (Fig 9);
//! - cloud auto-scaling via a policy hook that resizes the cluster
//!   (Fig 10).
//!
//! Entry point: [`engine::Simulation`]. Scheduling policies implement
//! [`policy::SchedulingPolicy`]; Pollux itself lives in `pollux-core`
//! and the baselines in `pollux-baselines`.

pub mod config;
pub mod engine;
pub mod interference;
pub mod job;
pub mod metrics;
pub mod policy;

pub use config::SimConfig;
pub use engine::{SimBuildError, Simulation};
pub use interference::InterferenceIndex;
pub use job::{JobLifecycle, JobState, SimJob};
pub use metrics::{ClusterSample, JobRecord, SchedIntervalSample, SimResult};
pub use policy::{
    AdmissionPolicy, Admitted, ConsolidatedPlacement, NoPreemption, PlacementPolicy, PreemptAll,
    PreemptionPolicy, StagedScheduler,
};
pub use policy::{PolicyJobView, SchedulingPolicy};
