//! Simulation metrics: per-job completion records and cluster time
//! series.

use pollux_cluster::JobId;
use pollux_workload::ModelKind;
use serde::{Deserialize, Serialize};

/// Per-job outcome record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job identifier.
    pub id: JobId,
    /// Model trained.
    pub kind: ModelKind,
    /// Submission time (s).
    pub submit_time: f64,
    /// First allocation time, if ever started.
    pub start_time: Option<f64>,
    /// Completion time, if finished within the simulation horizon.
    pub finish_time: Option<f64>,
    /// Attained GPU-seconds.
    pub gputime: f64,
    /// Checkpoint-restarts suffered.
    pub num_restarts: u32,
    /// Raw examples processed over the job's lifetime.
    pub examples_processed: f64,
    /// Useful examples (progress at m0-efficiency).
    pub useful_examples: f64,
}

impl JobRecord {
    /// Job completion time (finish − submit), if finished.
    pub fn jct(&self) -> Option<f64> {
        self.finish_time.map(|f| f - self.submit_time)
    }

    /// Lifetime average statistical efficiency: useful / processed.
    pub fn avg_efficiency(&self) -> Option<f64> {
        if self.examples_processed > 0.0 {
            Some(self.useful_examples / self.examples_processed)
        } else {
            None
        }
    }
}

/// One cluster-state sample (taken every scheduling interval).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSample {
    /// Sample time (s).
    pub time: f64,
    /// Nodes in the cluster.
    pub nodes: u32,
    /// Total GPUs in the cluster.
    pub total_gpus: u32,
    /// GPUs currently allocated.
    pub used_gpus: u32,
    /// Jobs currently running.
    pub running_jobs: u32,
    /// Jobs currently pending.
    pub pending_jobs: u32,
    /// Mean true statistical efficiency across running jobs at their
    /// current batch sizes (the Sec. 5.2.1 "≈91 % vs ≈74 %" metric).
    pub mean_efficiency: f64,
    /// Aggregate true throughput (examples/s).
    pub total_throughput: f64,
    /// Aggregate true goodput (useful examples/s).
    pub total_goodput: f64,
}

/// What happened to a job at a scheduling boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// First allocation: the job began training.
    Started,
    /// Re-allocated: checkpoint-restart delay incurred.
    Restarted,
    /// GPUs revoked: the job returned to the pending queue.
    Preempted,
    /// Training reached its total work.
    Finished,
}

/// One entry of the allocation timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulingEvent {
    /// Simulation time (s).
    pub time: f64,
    /// The affected job.
    pub job: JobId,
    /// What happened.
    pub kind: EventKind,
    /// GPUs held after the event.
    pub gpus: u32,
}

/// One per-job state sample (recorded when
/// `SimConfig::record_job_series` is set).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSample {
    /// Sample time (s).
    pub time: f64,
    /// The job.
    pub job: JobId,
    /// GPUs held.
    pub gpus: u32,
    /// Total batch size in effect.
    pub batch_size: u64,
    /// Normalized training progress in [0, 1].
    pub progress: f64,
}

/// Per-interval scheduler cost breakdown, reported by policies that
/// implement [`crate::SchedulingPolicy::take_interval_stats`] (the
/// Pollux policy does; baselines report nothing).
///
/// The wall-clock fields are non-deterministic and excluded from
/// serialization; every counter is deterministic for a fixed seed and
/// thread count. The vendored serde stub serializes through `Debug`,
/// so the manual `Debug` impl below deliberately omits the nanos
/// fields — that keeps serialized `SimResult`s byte-identical across
/// thread counts while the timings stay readable in code.
#[derive(Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedIntervalSample {
    /// Simulation time of the interval (s).
    pub time: f64,
    /// Wall-clock nanoseconds spent precomputing the dense speedup
    /// table (not serialized: machine-dependent).
    #[serde(skip)]
    pub table_build_nanos: u64,
    /// Wall-clock nanoseconds spent in the genetic-algorithm evolve
    /// loop (not serialized: machine-dependent).
    #[serde(skip)]
    pub ga_evolve_nanos: u64,
    /// GA generations executed.
    pub generations_run: u64,
    /// Full-chromosome fitness evaluations.
    pub fitness_evals: u64,
    /// Fitness evaluations answered incrementally (only touched rows
    /// recomputed).
    pub incremental_evals: u64,
    /// Per-job contribution rows recomputed across all incremental
    /// evaluations.
    pub rows_recomputed: u64,
    /// Dense-table lookups answered in range.
    pub table_hits: u64,
    /// Out-of-range table lookups (answered 0).
    pub table_misses: u64,
    /// Golden-section goodput solves spent building the table.
    pub table_solves: u64,
}

impl std::fmt::Debug for SchedIntervalSample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately omits `table_build_nanos` / `ga_evolve_nanos`:
        // under the vendored serde stub, Debug IS the serialized form,
        // and wall-clock timings must not leak into determinism
        // comparisons of serialized `SimResult`s.
        f.debug_struct("SchedIntervalSample")
            .field("time", &self.time)
            .field("generations_run", &self.generations_run)
            .field("fitness_evals", &self.fitness_evals)
            .field("incremental_evals", &self.incremental_evals)
            .field("rows_recomputed", &self.rows_recomputed)
            .field("table_hits", &self.table_hits)
            .field("table_misses", &self.table_misses)
            .field("table_solves", &self.table_solves)
            .finish()
    }
}

/// Complete result of one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimResult {
    /// Policy name the run used.
    pub policy: String,
    /// Per-job records (submission order).
    pub records: Vec<JobRecord>,
    /// Cluster time series.
    pub series: Vec<ClusterSample>,
    /// Allocation timeline (starts, restarts, preemptions, finishes).
    pub events: Vec<SchedulingEvent>,
    /// Per-job state series (empty unless requested).
    pub job_series: Vec<JobSample>,
    /// Simulation end time (s).
    pub end_time: f64,
    /// Integral of cluster size over time, in node-seconds (cloud cost
    /// proxy for the Fig 10 experiment).
    pub node_seconds: f64,
    /// Per-interval scheduler cost breakdowns (empty for policies that
    /// do not report them).
    #[serde(default)]
    pub sched_stats: Vec<SchedIntervalSample>,
}

impl SimResult {
    /// JCTs of all finished jobs.
    pub fn jcts(&self) -> Vec<f64> {
        self.records.iter().filter_map(JobRecord::jct).collect()
    }

    /// Number of jobs that did not finish within the horizon.
    pub fn unfinished(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.finish_time.is_none())
            .count()
    }

    /// Average JCT in seconds over finished jobs.
    pub fn avg_jct(&self) -> Option<f64> {
        let j = self.jcts();
        if j.is_empty() {
            None
        } else {
            Some(j.iter().sum::<f64>() / j.len() as f64)
        }
    }

    /// The `p`-th percentile JCT (0 < p ≤ 100), nearest-rank.
    pub fn percentile_jct(&self, p: f64) -> Option<f64> {
        let mut j = self.jcts();
        if j.is_empty() || !(0.0..=100.0).contains(&p) {
            return None;
        }
        j.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((p / 100.0 * j.len() as f64).ceil() as usize).clamp(1, j.len());
        Some(j[rank - 1])
    }

    /// Makespan: last finish time minus first submission, if all jobs
    /// finished; otherwise the simulation end time is used.
    pub fn makespan(&self) -> f64 {
        let first_submit = self
            .records
            .iter()
            .map(|r| r.submit_time)
            .fold(f64::INFINITY, f64::min);
        let last_finish = self
            .records
            .iter()
            .map(|r| r.finish_time.unwrap_or(self.end_time))
            .fold(0.0f64, f64::max);
        if first_submit.is_finite() {
            (last_finish - first_submit).max(0.0)
        } else {
            0.0
        }
    }

    /// Time-averaged mean statistical efficiency across running jobs,
    /// weighted by the number of running jobs at each sample.
    pub fn avg_cluster_efficiency(&self) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0.0;
        for s in &self.series {
            if s.running_jobs > 0 {
                num += s.mean_efficiency * s.running_jobs as f64;
                den += s.running_jobs as f64;
            }
        }
        if den > 0.0 {
            Some(num / den)
        } else {
            None
        }
    }

    /// Mean per-job lifetime throughput (examples/s of wall-clock
    /// lifetime), over finished jobs.
    pub fn mean_job_throughput(&self) -> Option<f64> {
        let vals: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.jct().map(|t| r.examples_processed / t.max(1e-9)))
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Mean per-job lifetime goodput (useful examples/s), over
    /// finished jobs.
    pub fn mean_job_goodput(&self) -> Option<f64> {
        let vals: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.jct().map(|t| r.useful_examples / t.max(1e-9)))
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// The recorded series of one job, in time order.
    pub fn job_series_of(&self, id: JobId) -> Vec<JobSample> {
        self.job_series
            .iter()
            .filter(|s| s.job == id)
            .copied()
            .collect()
    }

    /// The JCT CDF as `(jct_seconds, fraction ≤ jct)` points over
    /// finished jobs, sorted ascending — ready for plotting.
    pub fn jct_cdf(&self) -> Vec<(f64, f64)> {
        let mut j = self.jcts();
        j.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = j.len() as f64;
        j.into_iter()
            .enumerate()
            .map(|(i, v)| (v, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u32, submit: f64, finish: Option<f64>) -> JobRecord {
        JobRecord {
            id: JobId(id),
            kind: ModelKind::ResNet18Cifar10,
            submit_time: submit,
            start_time: finish.map(|_| submit),
            finish_time: finish,
            gputime: 100.0,
            num_restarts: 0,
            examples_processed: 1000.0,
            useful_examples: 900.0,
        }
    }

    #[test]
    fn jct_and_efficiency() {
        let r = record(0, 10.0, Some(110.0));
        assert_eq!(r.jct(), Some(100.0));
        assert!((r.avg_efficiency().unwrap() - 0.9).abs() < 1e-12);
        let r = record(1, 10.0, None);
        assert_eq!(r.jct(), None);
    }

    #[test]
    fn aggregates() {
        let res = SimResult {
            end_time: 1000.0,
            records: vec![
                record(0, 0.0, Some(100.0)),
                record(1, 0.0, Some(300.0)),
                record(2, 50.0, None),
            ],
            ..Default::default()
        };
        assert_eq!(res.jcts().len(), 2);
        assert_eq!(res.unfinished(), 1);
        assert!((res.avg_jct().unwrap() - 200.0).abs() < 1e-9);
        // Makespan falls back to end_time for unfinished jobs.
        assert!((res.makespan() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let res = SimResult {
            records: (0..100)
                .map(|i| record(i, 0.0, Some((i + 1) as f64)))
                .collect(),
            ..Default::default()
        };
        assert_eq!(res.percentile_jct(50.0), Some(50.0));
        assert_eq!(res.percentile_jct(99.0), Some(99.0));
        assert_eq!(res.percentile_jct(100.0), Some(100.0));
        assert_eq!(res.percentile_jct(1.0), Some(1.0));
        assert_eq!(res.percentile_jct(150.0), None);
    }

    #[test]
    fn jct_cdf_is_monotone_and_normalized() {
        let res = SimResult {
            records: vec![
                record(0, 0.0, Some(300.0)),
                record(1, 0.0, Some(100.0)),
                record(2, 0.0, Some(200.0)),
                record(3, 0.0, None),
            ],
            ..Default::default()
        };
        let cdf = res.jct_cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0], (100.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (300.0, 1.0));
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
        assert!(SimResult::default().jct_cdf().is_empty());
    }

    #[test]
    fn empty_result_is_graceful() {
        let res = SimResult::default();
        assert_eq!(res.avg_jct(), None);
        assert_eq!(res.percentile_jct(50.0), None);
        assert_eq!(res.makespan(), 0.0);
        assert_eq!(res.avg_cluster_efficiency(), None);
        assert_eq!(res.mean_job_throughput(), None);
    }

    #[test]
    fn cluster_efficiency_weighted_by_running_jobs() {
        let res = SimResult {
            series: vec![
                ClusterSample {
                    time: 0.0,
                    nodes: 4,
                    total_gpus: 16,
                    used_gpus: 4,
                    running_jobs: 1,
                    pending_jobs: 0,
                    mean_efficiency: 1.0,
                    total_throughput: 0.0,
                    total_goodput: 0.0,
                },
                ClusterSample {
                    time: 60.0,
                    nodes: 4,
                    total_gpus: 16,
                    used_gpus: 12,
                    running_jobs: 3,
                    pending_jobs: 1,
                    mean_efficiency: 0.6,
                    total_throughput: 0.0,
                    total_goodput: 0.0,
                },
            ],
            ..Default::default()
        };
        // (1.0·1 + 0.6·3) / 4 = 0.7.
        assert!((res.avg_cluster_efficiency().unwrap() - 0.7).abs() < 1e-12);
    }
}
