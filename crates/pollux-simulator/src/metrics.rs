//! Simulation metrics: per-job completion records and cluster time
//! series.

use pollux_cluster::JobId;
use pollux_workload::ModelKind;
use serde::{Deserialize, Serialize};

/// Per-job outcome record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job identifier.
    pub id: JobId,
    /// Model trained.
    pub kind: ModelKind,
    /// Submission time (s).
    pub submit_time: f64,
    /// First allocation time, if ever started.
    pub start_time: Option<f64>,
    /// Completion time, if finished within the simulation horizon.
    pub finish_time: Option<f64>,
    /// Attained GPU-seconds.
    pub gputime: f64,
    /// Checkpoint-restarts suffered.
    pub num_restarts: u32,
    /// Raw examples processed over the job's lifetime.
    pub examples_processed: f64,
    /// Useful examples (progress at m0-efficiency).
    pub useful_examples: f64,
}

impl JobRecord {
    /// Job completion time (finish − submit), if finished.
    pub fn jct(&self) -> Option<f64> {
        self.finish_time.map(|f| f - self.submit_time)
    }

    /// Queue time (first start − submit): how long the job waited for
    /// its first allocation. `None` for jobs that never started within
    /// the horizon; a job that started but did not finish still has a
    /// queue time.
    pub fn queue_time(&self) -> Option<f64> {
        self.start_time.map(|s| s - self.submit_time)
    }

    /// Lifetime average statistical efficiency: useful / processed.
    pub fn avg_efficiency(&self) -> Option<f64> {
        if self.examples_processed > 0.0 {
            Some(self.useful_examples / self.examples_processed)
        } else {
            None
        }
    }
}

/// One cluster-state sample (taken every scheduling interval).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSample {
    /// Sample time (s).
    pub time: f64,
    /// Nodes in the cluster.
    pub nodes: u32,
    /// Total GPUs in the cluster.
    pub total_gpus: u32,
    /// GPUs currently allocated.
    pub used_gpus: u32,
    /// Jobs currently running.
    pub running_jobs: u32,
    /// Jobs currently pending.
    pub pending_jobs: u32,
    /// Mean true statistical efficiency across running jobs at their
    /// current batch sizes (the Sec. 5.2.1 "≈91 % vs ≈74 %" metric).
    pub mean_efficiency: f64,
    /// Aggregate true throughput (examples/s).
    pub total_throughput: f64,
    /// Aggregate true goodput (useful examples/s).
    pub total_goodput: f64,
}

/// What happened to a job at a scheduling boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// First allocation: the job began training.
    Started,
    /// Re-allocated: checkpoint-restart delay incurred.
    Restarted,
    /// GPUs revoked: the job returned to the pending queue.
    Preempted,
    /// Training reached its total work.
    Finished,
}

/// One entry of the allocation timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulingEvent {
    /// Simulation time (s).
    pub time: f64,
    /// The affected job.
    pub job: JobId,
    /// What happened.
    pub kind: EventKind,
    /// GPUs held after the event.
    pub gpus: u32,
}

/// One per-job state sample (recorded when
/// `SimConfig::record_job_series` is set).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSample {
    /// Sample time (s).
    pub time: f64,
    /// The job.
    pub job: JobId,
    /// GPUs held.
    pub gpus: u32,
    /// Total batch size in effect.
    pub batch_size: u64,
    /// Normalized training progress in [0, 1].
    pub progress: f64,
}

/// Per-interval scheduler cost breakdown; defined in the shared
/// control-plane core and re-exported here because it participates in
/// the serialized (golden-digested) [`SimResult`].
pub use pollux_control::SchedIntervalSample;

/// One point of the derived per-interval cluster time-series
/// ([`SimResult::cluster_timeseries`]): the goodput/efficiency/
/// allocation view of the cluster plus cumulative restarts.
///
/// Computed on demand from `series` and `events`; deliberately **not**
/// stored in [`SimResult`], so the serialized (golden-digested) form
/// of a run is unchanged by its existence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterIntervalPoint {
    /// Sample time (s).
    pub time: f64,
    /// Aggregate true goodput (useful examples/s).
    pub total_goodput: f64,
    /// Aggregate true throughput (examples/s).
    pub total_throughput: f64,
    /// Mean statistical efficiency across running jobs.
    pub mean_efficiency: f64,
    /// GPUs currently allocated.
    pub used_gpus: u32,
    /// Total GPUs in the cluster.
    pub total_gpus: u32,
    /// Jobs currently running.
    pub running_jobs: u32,
    /// Jobs currently pending.
    pub pending_jobs: u32,
    /// Checkpoint-restarts that occurred at or before this sample.
    pub restarts: u64,
}

/// Percentile summary of a run's completion and waiting behavior
/// ([`SimResult::summary`]). Percentiles are nearest-rank; wait-time
/// statistics cover every job that started (finished or not), while
/// never-started jobs appear only in `never_started`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricsSummary {
    /// Jobs that finished within the horizon.
    pub finished: usize,
    /// Jobs that did not finish within the horizon.
    pub unfinished: usize,
    /// Jobs that never received a first allocation.
    pub never_started: usize,
    /// Mean JCT over finished jobs (s).
    pub avg_jct: Option<f64>,
    /// Median JCT (s).
    pub p50_jct: Option<f64>,
    /// 95th-percentile JCT (s).
    pub p95_jct: Option<f64>,
    /// 99th-percentile JCT (s).
    pub p99_jct: Option<f64>,
    /// Mean queue wait over started jobs (s).
    pub avg_wait: Option<f64>,
    /// Median queue wait (s).
    pub p50_wait: Option<f64>,
    /// 95th-percentile queue wait (s).
    pub p95_wait: Option<f64>,
    /// 99th-percentile queue wait (s).
    pub p99_wait: Option<f64>,
}

/// Nearest-rank percentile of an unsorted sample (`None` when empty or
/// `p` is outside `[0, 100]`).
fn percentile_of(mut vals: Vec<f64>, p: f64) -> Option<f64> {
    if vals.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0 * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
    Some(vals[rank - 1])
}

/// Complete result of one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimResult {
    /// Policy name the run used.
    pub policy: String,
    /// Per-job records (submission order).
    pub records: Vec<JobRecord>,
    /// Cluster time series.
    pub series: Vec<ClusterSample>,
    /// Allocation timeline (starts, restarts, preemptions, finishes).
    pub events: Vec<SchedulingEvent>,
    /// Per-job state series (empty unless requested).
    pub job_series: Vec<JobSample>,
    /// Simulation end time (s).
    pub end_time: f64,
    /// Integral of cluster size over time, in node-seconds (cloud cost
    /// proxy for the Fig 10 experiment).
    pub node_seconds: f64,
    /// Per-interval scheduler cost breakdowns (empty for policies that
    /// do not report them).
    #[serde(default)]
    pub sched_stats: Vec<SchedIntervalSample>,
}

impl SimResult {
    /// JCTs of all finished jobs.
    pub fn jcts(&self) -> Vec<f64> {
        self.records.iter().filter_map(JobRecord::jct).collect()
    }

    /// Number of jobs that did not finish within the horizon.
    pub fn unfinished(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.finish_time.is_none())
            .count()
    }

    /// Average JCT in seconds over finished jobs.
    pub fn avg_jct(&self) -> Option<f64> {
        let j = self.jcts();
        if j.is_empty() {
            None
        } else {
            Some(j.iter().sum::<f64>() / j.len() as f64)
        }
    }

    /// The `p`-th percentile JCT (0 < p ≤ 100), nearest-rank.
    pub fn percentile_jct(&self, p: f64) -> Option<f64> {
        percentile_of(self.jcts(), p)
    }

    /// Queue waits (first start − submit) of all jobs that started.
    pub fn wait_times(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter_map(JobRecord::queue_time)
            .collect()
    }

    /// The `p`-th percentile queue wait (0 < p ≤ 100), nearest-rank,
    /// over jobs that started. `None` when no job ever started.
    pub fn percentile_wait(&self, p: f64) -> Option<f64> {
        percentile_of(self.wait_times(), p)
    }

    /// Percentile summary of completions and queue waits.
    pub fn summary(&self) -> MetricsSummary {
        let waits = self.wait_times();
        let avg_wait = if waits.is_empty() {
            None
        } else {
            Some(waits.iter().sum::<f64>() / waits.len() as f64)
        };
        MetricsSummary {
            finished: self.records.len() - self.unfinished(),
            unfinished: self.unfinished(),
            never_started: self
                .records
                .iter()
                .filter(|r| r.start_time.is_none())
                .count(),
            avg_jct: self.avg_jct(),
            p50_jct: self.percentile_jct(50.0),
            p95_jct: self.percentile_jct(95.0),
            p99_jct: self.percentile_jct(99.0),
            avg_wait,
            p50_wait: self.percentile_wait(50.0),
            p95_wait: self.percentile_wait(95.0),
            p99_wait: self.percentile_wait(99.0),
        }
    }

    /// The derived per-interval cluster time-series: every
    /// [`ClusterSample`] joined with the cumulative restart count from
    /// the event timeline. Both inputs are time-sorted by
    /// construction, so the join is a linear merge.
    pub fn cluster_timeseries(&self) -> Vec<ClusterIntervalPoint> {
        let mut restarts = 0u64;
        let mut next_event = 0usize;
        self.series
            .iter()
            .map(|s| {
                while next_event < self.events.len() && self.events[next_event].time <= s.time {
                    if self.events[next_event].kind == EventKind::Restarted {
                        restarts += 1;
                    }
                    next_event += 1;
                }
                ClusterIntervalPoint {
                    time: s.time,
                    total_goodput: s.total_goodput,
                    total_throughput: s.total_throughput,
                    mean_efficiency: s.mean_efficiency,
                    used_gpus: s.used_gpus,
                    total_gpus: s.total_gpus,
                    running_jobs: s.running_jobs,
                    pending_jobs: s.pending_jobs,
                    restarts,
                }
            })
            .collect()
    }

    /// Makespan: last finish time minus first submission, if all jobs
    /// finished; otherwise the simulation end time is used.
    pub fn makespan(&self) -> f64 {
        let first_submit = self
            .records
            .iter()
            .map(|r| r.submit_time)
            .fold(f64::INFINITY, f64::min);
        let last_finish = self
            .records
            .iter()
            .map(|r| r.finish_time.unwrap_or(self.end_time))
            .fold(0.0f64, f64::max);
        if first_submit.is_finite() {
            (last_finish - first_submit).max(0.0)
        } else {
            0.0
        }
    }

    /// Time-averaged mean statistical efficiency across running jobs,
    /// weighted by the number of running jobs at each sample.
    pub fn avg_cluster_efficiency(&self) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0.0;
        for s in &self.series {
            if s.running_jobs > 0 {
                num += s.mean_efficiency * s.running_jobs as f64;
                den += s.running_jobs as f64;
            }
        }
        if den > 0.0 {
            Some(num / den)
        } else {
            None
        }
    }

    /// Mean per-job lifetime throughput (examples/s of wall-clock
    /// lifetime), over finished jobs.
    pub fn mean_job_throughput(&self) -> Option<f64> {
        let vals: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.jct().map(|t| r.examples_processed / t.max(1e-9)))
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Mean per-job lifetime goodput (useful examples/s), over
    /// finished jobs.
    pub fn mean_job_goodput(&self) -> Option<f64> {
        let vals: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.jct().map(|t| r.useful_examples / t.max(1e-9)))
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// The recorded series of one job, in time order.
    pub fn job_series_of(&self, id: JobId) -> Vec<JobSample> {
        self.job_series
            .iter()
            .filter(|s| s.job == id)
            .copied()
            .collect()
    }

    /// The JCT CDF as `(jct_seconds, fraction ≤ jct)` points over
    /// finished jobs, sorted ascending — ready for plotting.
    pub fn jct_cdf(&self) -> Vec<(f64, f64)> {
        let mut j = self.jcts();
        j.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = j.len() as f64;
        j.into_iter()
            .enumerate()
            .map(|(i, v)| (v, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u32, submit: f64, finish: Option<f64>) -> JobRecord {
        JobRecord {
            id: JobId(id),
            kind: ModelKind::ResNet18Cifar10,
            submit_time: submit,
            start_time: finish.map(|_| submit),
            finish_time: finish,
            gputime: 100.0,
            num_restarts: 0,
            examples_processed: 1000.0,
            useful_examples: 900.0,
        }
    }

    #[test]
    fn jct_and_efficiency() {
        let r = record(0, 10.0, Some(110.0));
        assert_eq!(r.jct(), Some(100.0));
        assert!((r.avg_efficiency().unwrap() - 0.9).abs() < 1e-12);
        let r = record(1, 10.0, None);
        assert_eq!(r.jct(), None);
    }

    #[test]
    fn aggregates() {
        let res = SimResult {
            end_time: 1000.0,
            records: vec![
                record(0, 0.0, Some(100.0)),
                record(1, 0.0, Some(300.0)),
                record(2, 50.0, None),
            ],
            ..Default::default()
        };
        assert_eq!(res.jcts().len(), 2);
        assert_eq!(res.unfinished(), 1);
        assert!((res.avg_jct().unwrap() - 200.0).abs() < 1e-9);
        // Makespan falls back to end_time for unfinished jobs.
        assert!((res.makespan() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let res = SimResult {
            records: (0..100)
                .map(|i| record(i, 0.0, Some((i + 1) as f64)))
                .collect(),
            ..Default::default()
        };
        assert_eq!(res.percentile_jct(50.0), Some(50.0));
        assert_eq!(res.percentile_jct(99.0), Some(99.0));
        assert_eq!(res.percentile_jct(100.0), Some(100.0));
        assert_eq!(res.percentile_jct(1.0), Some(1.0));
        assert_eq!(res.percentile_jct(150.0), None);
    }

    #[test]
    fn jct_cdf_is_monotone_and_normalized() {
        let res = SimResult {
            records: vec![
                record(0, 0.0, Some(300.0)),
                record(1, 0.0, Some(100.0)),
                record(2, 0.0, Some(200.0)),
                record(3, 0.0, None),
            ],
            ..Default::default()
        };
        let cdf = res.jct_cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0], (100.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (300.0, 1.0));
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
        assert!(SimResult::default().jct_cdf().is_empty());
    }

    #[test]
    fn queue_time_handles_never_started_and_unfinished_jobs() {
        // Finished job: waited 25 s for its first allocation.
        let mut finished = record(0, 10.0, Some(110.0));
        finished.start_time = Some(35.0);
        assert_eq!(finished.queue_time(), Some(25.0));

        // Started but unfinished: queue time exists, JCT does not.
        let started_unfinished = JobRecord {
            start_time: Some(50.0),
            ..record(1, 10.0, None)
        };
        assert_eq!(started_unfinished.queue_time(), Some(40.0));
        assert_eq!(started_unfinished.jct(), None);

        // Never started: no queue time at all.
        let never_started = record(2, 10.0, None);
        assert_eq!(never_started.start_time, None);
        assert_eq!(never_started.queue_time(), None);

        let res = SimResult {
            records: vec![finished, started_unfinished, never_started],
            ..Default::default()
        };
        // Wait percentiles cover the two started jobs only.
        assert_eq!(res.wait_times(), vec![25.0, 40.0]);
        assert_eq!(res.percentile_wait(50.0), Some(25.0));
        assert_eq!(res.percentile_wait(99.0), Some(40.0));
        let s = res.summary();
        assert_eq!(s.finished, 1);
        assert_eq!(s.unfinished, 2);
        assert_eq!(s.never_started, 1);
        assert_eq!(s.avg_wait, Some(32.5));
        assert_eq!(s.p50_jct, Some(100.0));
        assert_eq!(s.p99_wait, Some(40.0));
    }

    #[test]
    fn summary_of_unstarted_workload_is_all_none() {
        let res = SimResult {
            records: vec![record(0, 0.0, None), record(1, 5.0, None)],
            ..Default::default()
        };
        let s = res.summary();
        assert_eq!(s.finished, 0);
        assert_eq!(s.unfinished, 2);
        assert_eq!(s.never_started, 2);
        assert_eq!(s.avg_jct, None);
        assert_eq!(s.p99_jct, None);
        assert_eq!(s.avg_wait, None);
        assert_eq!(s.p50_wait, None);
    }

    #[test]
    fn cluster_timeseries_accumulates_restarts() {
        let sample = |time: f64| ClusterSample {
            time,
            nodes: 1,
            total_gpus: 4,
            used_gpus: 2,
            running_jobs: 1,
            pending_jobs: 0,
            mean_efficiency: 0.9,
            total_throughput: 10.0,
            total_goodput: 9.0,
        };
        let event = |time: f64, kind: EventKind| SchedulingEvent {
            time,
            job: JobId(0),
            kind,
            gpus: 1,
        };
        let res = SimResult {
            series: vec![sample(0.0), sample(60.0), sample(120.0)],
            events: vec![
                event(0.0, EventKind::Started),
                event(60.0, EventKind::Restarted),
                event(90.0, EventKind::Restarted),
                event(125.0, EventKind::Restarted), // after the last sample
            ],
            ..Default::default()
        };
        let ts = res.cluster_timeseries();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].restarts, 0);
        assert_eq!(ts[1].restarts, 1, "same-time restart counts");
        assert_eq!(ts[2].restarts, 2);
        assert_eq!(ts[2].total_goodput, 9.0);
        assert_eq!(ts[2].used_gpus, 2);
        assert!(SimResult::default().cluster_timeseries().is_empty());
    }

    #[test]
    fn empty_result_is_graceful() {
        let res = SimResult::default();
        assert_eq!(res.avg_jct(), None);
        assert_eq!(res.percentile_jct(50.0), None);
        assert_eq!(res.makespan(), 0.0);
        assert_eq!(res.avg_cluster_efficiency(), None);
        assert_eq!(res.mean_job_throughput(), None);
    }

    #[test]
    fn cluster_efficiency_weighted_by_running_jobs() {
        let res = SimResult {
            series: vec![
                ClusterSample {
                    time: 0.0,
                    nodes: 4,
                    total_gpus: 16,
                    used_gpus: 4,
                    running_jobs: 1,
                    pending_jobs: 0,
                    mean_efficiency: 1.0,
                    total_throughput: 0.0,
                    total_goodput: 0.0,
                },
                ClusterSample {
                    time: 60.0,
                    nodes: 4,
                    total_gpus: 16,
                    used_gpus: 12,
                    running_jobs: 3,
                    pending_jobs: 1,
                    mean_efficiency: 0.6,
                    total_throughput: 0.0,
                    total_goodput: 0.0,
                },
            ],
            ..Default::default()
        };
        // (1.0·1 + 0.6·3) / 4 = 0.7.
        assert!((res.avg_cluster_efficiency().unwrap() - 0.7).abs() < 1e-12);
    }
}
