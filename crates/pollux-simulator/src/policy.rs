//! The scheduling-policy interface.
//!
//! A policy is invoked at every scheduling interval with read-only
//! views of all active (non-finished) jobs. It returns the allocation
//! matrix to apply; optionally it can also resize the cluster (cloud
//! auto-scaling).

use crate::job::SimJob;
use crate::metrics::SchedIntervalSample;
use pollux_agent::AgentReport;
use pollux_cluster::{AllocationMatrix, ClusterSpec, JobId};
use pollux_models::BatchSizeLimits;
use pollux_telemetry::Recorder;
use pollux_workload::{ModelProfile, UserConfig};
use rand::rngs::StdRng;

/// Read-only per-job information exposed to policies.
///
/// Ground truth is deliberately absent except for `remaining_work`,
/// which implements the paper's *Optimus+Oracle* concession ("we run
/// each job ahead of time and provide Optimus with the exact number of
/// iterations until completion", Sec. 5.2). Honest policies simply
/// ignore it.
#[derive(Debug, Clone)]
pub struct PolicyJobView<'a> {
    /// Stable job identifier.
    pub id: JobId,
    /// The user-submitted `(GPUs, batch size)` configuration.
    pub user: UserConfig,
    /// Static, user-visible model metadata (name, m0, memory limits).
    pub profile: &'a ModelProfile,
    /// Batch-size limits (same as `profile.limits`, for convenience).
    pub limits: BatchSizeLimits,
    /// The agent's latest report, absent until its first θsys fit.
    pub report: Option<AgentReport>,
    /// Attained service in GPU-seconds (drives Tiresias priorities and
    /// Pollux job weights).
    pub gputime: f64,
    /// Submission time.
    pub submit_time: f64,
    /// The placement row currently applied (cluster-width).
    pub current_placement: &'a [u32],
    /// Current batch size in effect.
    pub batch_size: u64,
    /// ORACLE: remaining work in examples at m0-efficiency.
    pub remaining_work: f64,
}

impl<'a> PolicyJobView<'a> {
    /// Builds the view from a simulated job (engine internal, but
    /// public for writing custom drivers and tests).
    pub fn from_sim_job(job: &'a SimJob) -> Self {
        Self {
            id: job.spec.id,
            user: job.user,
            profile: &job.profile,
            limits: job.profile.limits,
            report: job.agent.report(),
            gputime: job.gputime,
            submit_time: job.spec.submit_time,
            current_placement: &job.placement,
            batch_size: job.batch_size,
            remaining_work: job.remaining_work(),
        }
    }

    /// True when the job currently holds GPUs.
    pub fn is_running(&self) -> bool {
        self.current_placement.iter().any(|&g| g > 0)
    }
}

/// A cluster scheduling policy under evaluation.
pub trait SchedulingPolicy {
    /// Human-readable policy name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Whether the engine should let each job's agent re-tune its
    /// batch size and learning rate (true for Pollux, false for the
    /// baselines, which use the user-submitted batch size with
    /// AdaScale LR only — Sec. 5.2).
    fn adapts_batch_size(&self) -> bool {
        false
    }

    /// Computes the allocation matrix for this interval. Row `i`
    /// corresponds to `jobs[i]`. The returned matrix must be feasible
    /// for `spec`; the engine clamps infeasible matrices defensively.
    fn schedule(
        &mut self,
        now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> AllocationMatrix;

    /// Cloud auto-scaling hook: return the desired number of nodes, or
    /// `None` to keep the cluster fixed. Called before `schedule` at
    /// each interval.
    fn desired_nodes(
        &mut self,
        _now: f64,
        _jobs: &[PolicyJobView<'_>],
        _spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> Option<u32> {
        None
    }

    /// Explicit batch-size choice for policies that scale the batch
    /// without goodput awareness (e.g. Or et al.'s throughput-based
    /// autoscaler, which grows the batch linearly with workers). Only
    /// consulted when [`Self::adapts_batch_size`] is `false`; `None`
    /// keeps the job's current batch size.
    fn choose_batch_size(&self, _job: &PolicyJobView<'_>) -> Option<u64> {
        None
    }

    /// Parallelism hint: the engine calls this once at simulation
    /// start with [`crate::SimConfig::sched_threads`]. Policies whose
    /// optimizer supports parallel evaluation (e.g. Pollux's genetic
    /// algorithm) reconfigure their worker pool; the default is a
    /// no-op, so purely serial policies need not care. Implementations
    /// must keep results independent of the thread count (Pollux's GA
    /// guarantees bit-identical schedules for a fixed seed).
    fn configure_parallelism(&mut self, _threads: usize) {}

    /// Drains the cost breakdown of the most recent `schedule` call,
    /// if the policy records one. The engine calls this after every
    /// interval and appends the sample (stamped with the simulation
    /// time) to [`crate::SimResult::sched_stats`]. The default
    /// reports nothing.
    fn take_interval_stats(&mut self) -> Option<SchedIntervalSample> {
        None
    }

    /// Hands the policy a telemetry [`Recorder`] so its internals
    /// (e.g. Pollux's GA) can emit spans and counters. Called by the
    /// engine when a recorder is attached via
    /// [`crate::Simulation::with_recorder`]; the default discards it.
    /// Implementations must uphold the determinism contract: recording
    /// may not change any scheduling decision.
    fn attach_telemetry(&mut self, _recorder: Recorder) {}
}

impl<P: SchedulingPolicy + ?Sized> SchedulingPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn adapts_batch_size(&self) -> bool {
        (**self).adapts_batch_size()
    }

    fn schedule(
        &mut self,
        now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> AllocationMatrix {
        (**self).schedule(now, jobs, spec, rng)
    }

    fn desired_nodes(
        &mut self,
        now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> Option<u32> {
        (**self).desired_nodes(now, jobs, spec, rng)
    }

    fn choose_batch_size(&self, job: &PolicyJobView<'_>) -> Option<u64> {
        (**self).choose_batch_size(job)
    }

    fn configure_parallelism(&mut self, threads: usize) {
        (**self).configure_parallelism(threads)
    }

    fn take_interval_stats(&mut self) -> Option<SchedIntervalSample> {
        (**self).take_interval_stats()
    }

    fn attach_telemetry(&mut self, recorder: Recorder) {
        (**self).attach_telemetry(recorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SimJob;
    use pollux_models::PlacementShape;
    use pollux_workload::{TraceConfig, TraceGenerator};

    #[test]
    fn view_reflects_job_state() {
        let trace = TraceGenerator::new(TraceConfig::default())
            .unwrap()
            .generate();
        let spec = trace[0].clone();
        let user = spec.tuned;
        let mut job = SimJob::new(spec, user, 4);
        job.placement = vec![0, 2, 0, 0];
        job.gputime = 120.0;
        job.progress = job.spec.work / 2.0;

        let v = PolicyJobView::from_sim_job(&job);
        assert_eq!(v.id, job.spec.id);
        assert!(v.is_running());
        assert_eq!(v.gputime, 120.0);
        assert!((v.remaining_work - job.spec.work / 2.0).abs() < 1e-6);
        assert!(v.report.is_none(), "no fit yet");
    }

    #[test]
    fn view_report_appears_after_fit() {
        let trace = TraceGenerator::new(TraceConfig::default())
            .unwrap()
            .generate();
        let spec = trace[0].clone();
        let user = spec.tuned;
        let mut job = SimJob::new(spec, user, 4);
        let shape = PlacementShape::single();
        let t = job.true_t_iter(shape, job.profile.m0);
        job.agent.observe_iteration(shape, job.profile.m0, t);
        assert!(job.agent.refit());
        let v = PolicyJobView::from_sim_job(&job);
        assert!(v.report.is_some());
    }
}
