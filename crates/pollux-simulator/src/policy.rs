//! The scheduling-policy interface, re-exported from the shared
//! control-plane core.
//!
//! A policy is invoked at every scheduling interval with read-only
//! views of all active (non-finished) jobs. It returns the allocation
//! matrix to apply; optionally it can also resize the cluster (cloud
//! auto-scaling). The types live in `pollux-control` so the live
//! `ClusterService` drives the very same interface; the simulator
//! builds its views with [`crate::SimJob::policy_view`].

pub use pollux_control::{
    AdmissionPolicy, Admitted, ConsolidatedPlacement, NoPreemption, PlacementPolicy, PreemptAll,
    PreemptionPolicy, StagedScheduler,
};
pub use pollux_control::{PolicyJobView, SchedulingPolicy};
