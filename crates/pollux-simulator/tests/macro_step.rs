//! Determinism suite for the macro-stepped simulation engine.
//!
//! The engine's contract is that restructuring the tick loop around
//! event horizons is a pure performance change: for a fixed seed the
//! `SimResult` must be **byte-identical** (compared through its
//! serialized form, which exposes every f64 bit pattern) to the
//! reference tick-stepper the repo retains in
//! [`Simulation::run_reference`]. Two layers pin that contract:
//!
//! 1. golden-trajectory digests: FNV-1a64 hashes of serialized
//!    `SimResult`s for fixed seed/workload pairs, captured from the
//!    pre-refactor engine (commit `80aa410`) and never allowed to
//!    drift;
//! 2. a proptest driving both steppers over random small workloads
//!    (varied arrivals, restart churn, interference) and requiring
//!    bitwise-equal results.

use pollux_cluster::{AllocationMatrix, ClusterSpec, JobId};
use pollux_simulator::{PolicyJobView, SchedulingPolicy, SimConfig, Simulation};
use pollux_workload::{JobSpec, ModelKind, TraceConfig, TraceGenerator, UserConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;

/// FNV-1a 64-bit digest; tiny, dependency-free, and stable.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Small-model workload with staggered arrivals.
fn workload(n: usize, stagger: f64, seed: u64) -> Vec<(JobSpec, UserConfig)> {
    workload_scaled(n, stagger, seed, 1.0)
}

/// [`workload`] with every job's total work scaled by `work_scale`.
/// Small scales force jobs to cross their finish line in the middle of
/// long chunks, exercising the job-major stepper's truncate-and-replay
/// path.
fn workload_scaled(
    n: usize,
    stagger: f64,
    seed: u64,
    work_scale: f64,
) -> Vec<(JobSpec, UserConfig)> {
    let trace = TraceGenerator::new(TraceConfig {
        num_jobs: 40,
        seed,
        ..Default::default()
    })
    .unwrap()
    .generate();
    trace
        .into_iter()
        .filter(|j| j.kind == ModelKind::ResNet18Cifar10 || j.kind == ModelKind::NeuMFMovieLens)
        .take(n)
        .enumerate()
        .map(|(i, mut spec)| {
            spec.id = JobId(i as u32);
            spec.submit_time = i as f64 * stagger;
            spec.work *= work_scale;
            let user = spec.tuned;
            (spec, user)
        })
        .collect()
}

/// A deliberately churny policy: placements rotate with a slow phase,
/// so jobs suffer periodic restarts and preemptions, and distributed
/// jobs overlap on shared nodes (exercising interference). It also
/// lets agents re-tune batch sizes, driving the report-path RNG draws.
#[derive(Clone, Copy)]
struct Churn;

impl SchedulingPolicy for Churn {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn adapts_batch_size(&self) -> bool {
        true
    }

    fn schedule(
        &mut self,
        now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> AllocationMatrix {
        let nodes = spec.num_nodes();
        let phase = (now / 600.0) as usize;
        let mut m = AllocationMatrix::zeros(jobs.len(), nodes);
        for (j, _) in jobs.iter().enumerate() {
            // Jobs alternate between a 1-GPU solo placement and a
            // 2-node distributed placement whose node pair rotates.
            let start = (j + phase) % nodes;
            if (j + phase).is_multiple_of(3) {
                m.set(j, start, 1);
                m.set(j, (start + 1) % nodes, 1);
            } else {
                m.set(j, start, 1);
            }
        }
        m
    }
}

/// FCFS packing (copy of the engine's doc-test idiom): stable
/// placements, no churn — the quiet counterpart of [`Churn`].
#[derive(Clone, Copy)]
struct FcfsPacked {
    gpus: u32,
}

impl SchedulingPolicy for FcfsPacked {
    fn name(&self) -> &'static str {
        "fcfs-packed"
    }

    fn schedule(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> AllocationMatrix {
        let mut free: Vec<u32> = spec.iter().map(|(_, s)| s.gpus).collect();
        let mut m = AllocationMatrix::zeros(jobs.len(), spec.num_nodes());
        for (j, view) in jobs.iter().enumerate() {
            if view.is_running() {
                for (n, &g) in view.current_placement.iter().enumerate() {
                    m.set(j, n, g);
                    free[n] = free[n].saturating_sub(g);
                }
                continue;
            }
            let mut need = self.gpus;
            for (n, f) in free.iter_mut().enumerate() {
                if need == 0 {
                    break;
                }
                let take = need.min(*f);
                if take > 0 {
                    m.set(j, n, take);
                    *f -= take;
                    need -= take;
                }
            }
            if need > 0 {
                for (n, f) in free.iter_mut().enumerate() {
                    *f += m.get(j, n);
                    m.set(j, n, 0);
                }
            }
        }
        m
    }
}

fn churn_config() -> SimConfig {
    SimConfig {
        max_sim_time: 6.0 * 3600.0,
        interference_slowdown: 0.3,
        seed: 5,
        ..Default::default()
    }
}

fn quiet_config() -> SimConfig {
    SimConfig {
        max_sim_time: 12.0 * 3600.0,
        seed: 7,
        ..Default::default()
    }
}

/// Which engine variant a run goes through. All three must be
/// bit-identical for a fixed seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stepper {
    /// `Simulation::run`: macro-stepped, job-major chunks.
    JobMajor,
    /// `Simulation::run_tick_major`: macro-stepped, tick-major chunks.
    TickMajor,
    /// `Simulation::run_reference`: the pre-refactor one-tick loop.
    Reference,
}

fn json_of<P: SchedulingPolicy>(
    cfg: SimConfig,
    spec: ClusterSpec,
    policy: P,
    wl: Vec<(JobSpec, UserConfig)>,
    stepper: Stepper,
) -> String {
    let sim = Simulation::new(cfg, spec, policy, wl).unwrap();
    let result = match stepper {
        Stepper::JobMajor => sim.run(),
        Stepper::TickMajor => sim.run_tick_major(),
        Stepper::Reference => sim.run_reference(),
    };
    serde_json::to_string(&result).expect("SimResult serializes")
}

fn digest_of<P: SchedulingPolicy>(
    cfg: SimConfig,
    spec: ClusterSpec,
    policy: P,
    wl: Vec<(JobSpec, UserConfig)>,
) -> u64 {
    fnv1a64(json_of(cfg, spec, policy, wl, Stepper::JobMajor).as_bytes())
}

/// Panics with the first differing byte region when two serialized
/// results are not identical (mirrors `pollux-core`'s determinism
/// suite so divergences are easy to localize).
fn assert_byte_identical(macro_stepped: &str, reference: &str, label: &str) {
    if macro_stepped == reference {
        return;
    }
    let at = macro_stepped
        .bytes()
        .zip(reference.bytes())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| macro_stepped.len().min(reference.len()));
    let lo = at.saturating_sub(80);
    panic!(
        "{label}: macro-stepped result diverged from the reference \
         stepper at byte {at}\n  macro: …{}…\n  ref:   …{}…",
        &macro_stepped[lo..(at + 80).min(macro_stepped.len())],
        &reference[lo..(at + 80).min(reference.len())],
    );
}

/// Golden digests captured from the pre-refactor 1 s tick loop. If one
/// of these changes, the engine's trajectory changed — that is a
/// correctness regression, not an acceptable side effect of a
/// performance PR.
const GOLDEN_CHURN: u64 = 0x3cf2_5ae5_ac27_01e5;
const GOLDEN_QUIET: u64 = 0x5454_2cce_0419_5e8c;

#[test]
fn golden_trajectory_churn() {
    let spec = ClusterSpec::homogeneous(3, 4).unwrap();
    let d = digest_of(churn_config(), spec, Churn, workload(8, 300.0, 3));
    assert_eq!(
        d, GOLDEN_CHURN,
        "macro-stepped engine diverged from the pinned pre-refactor trajectory: 0x{d:016x}"
    );
}

#[test]
fn golden_trajectory_quiet() {
    let spec = ClusterSpec::homogeneous(2, 4).unwrap();
    let d = digest_of(
        quiet_config(),
        spec,
        FcfsPacked { gpus: 2 },
        workload(6, 45.0, 11),
    );
    assert_eq!(
        d, GOLDEN_QUIET,
        "macro-stepped engine diverged from the pinned pre-refactor trajectory: 0x{d:016x}"
    );
}

/// The retained reference stepper must reproduce the same pinned
/// digests — it *is* the pre-refactor engine.
#[test]
fn reference_stepper_matches_goldens() {
    let churn = fnv1a64(
        json_of(
            churn_config(),
            ClusterSpec::homogeneous(3, 4).unwrap(),
            Churn,
            workload(8, 300.0, 3),
            Stepper::Reference,
        )
        .as_bytes(),
    );
    assert_eq!(churn, GOLDEN_CHURN, "reference drifted: 0x{churn:016x}");
    let quiet = fnv1a64(
        json_of(
            quiet_config(),
            ClusterSpec::homogeneous(2, 4).unwrap(),
            FcfsPacked { gpus: 2 },
            workload(6, 45.0, 11),
            Stepper::Reference,
        )
        .as_bytes(),
    );
    assert_eq!(quiet, GOLDEN_QUIET, "reference drifted: 0x{quiet:016x}");
}

/// The retained tick-major chunk stepper must also reproduce the
/// pinned digests: it shares the event-horizon chunking and the
/// two-phase report round with `run()`, differing only in the inner
/// chunk loop's layout.
#[test]
fn tick_major_stepper_matches_goldens() {
    let churn = fnv1a64(
        json_of(
            churn_config(),
            ClusterSpec::homogeneous(3, 4).unwrap(),
            Churn,
            workload(8, 300.0, 3),
            Stepper::TickMajor,
        )
        .as_bytes(),
    );
    assert_eq!(churn, GOLDEN_CHURN, "tick-major drifted: 0x{churn:016x}");
    let quiet = fnv1a64(
        json_of(
            quiet_config(),
            ClusterSpec::homogeneous(2, 4).unwrap(),
            FcfsPacked { gpus: 2 },
            workload(6, 45.0, 11),
            Stepper::TickMajor,
        )
        .as_bytes(),
    );
    assert_eq!(quiet, GOLDEN_QUIET, "tick-major drifted: 0x{quiet:016x}");
}

/// `engine_threads` may only change wall-clock time, never a byte of
/// the result: the job-major chunk loop and the report round's
/// refit/tune fan-out both commit in job order regardless of which
/// worker computed what. The pinned goldens are the oracle, so this
/// also proves the parallel paths equal the pre-refactor serial
/// engine — the churn trajectory drives restarts, interference, batch
/// re-tuning, and refits through the parallel report round.
#[test]
fn golden_digests_hold_at_any_engine_thread_count() {
    for threads in [1usize, 2, 4] {
        let cfg = SimConfig {
            engine_threads: threads,
            ..churn_config()
        };
        let spec = ClusterSpec::homogeneous(3, 4).unwrap();
        let d = digest_of(cfg, spec, Churn, workload(8, 300.0, 3));
        assert_eq!(
            d, GOLDEN_CHURN,
            "engine_threads={threads} perturbed the churn trajectory: 0x{d:016x}"
        );
        let cfg = SimConfig {
            engine_threads: threads,
            ..quiet_config()
        };
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let d = digest_of(cfg, spec, FcfsPacked { gpus: 2 }, workload(6, 45.0, 11));
        assert_eq!(
            d, GOLDEN_QUIET,
            "engine_threads={threads} perturbed the quiet trajectory: 0x{d:016x}"
        );
    }
}

/// Forced mid-chunk finishes: scale every job's work down so jobs
/// cross their finish line far from any event horizon, then require
/// the job-major stepper (at several thread counts) to match the
/// reference tick loop bit for bit. This pins the truncate-and-replay
/// rule — the chunk must cut at the earliest finish tick and replay
/// overrunning jobs over the truncated prefix without consuming extra
/// RNG draws.
#[test]
fn mid_chunk_finishes_are_bit_identical_across_steppers() {
    for work_scale in [0.01f64, 0.05, 0.2] {
        let wl = workload_scaled(8, 300.0, 3, work_scale);
        let spec = ClusterSpec::homogeneous(3, 4).unwrap();
        let reference = json_of(
            churn_config(),
            spec.clone(),
            Churn,
            wl.clone(),
            Stepper::Reference,
        );
        for threads in [1usize, 2, 4] {
            let cfg = SimConfig {
                engine_threads: threads,
                ..churn_config()
            };
            let job_major = json_of(cfg, spec.clone(), Churn, wl.clone(), Stepper::JobMajor);
            assert_byte_identical(
                &job_major,
                &reference,
                &format!("work_scale={work_scale} engine_threads={threads}"),
            );
        }
    }
}

/// The `nodes_per_rack` knob must not perturb a single byte of the
/// pinned trajectories: these policies ignore the topology hint, and
/// the degenerate (single-rack) grouping is defined to be inert even
/// for rack-aware policies (pollux-core's `rack_golden` suite pins
/// that half of the contract for the real Pollux stack).
#[test]
fn golden_digests_hold_with_rack_topology_configured() {
    // Exactly one rack (nodes_per_rack == num_nodes), one rack by
    // saturation (>= num_nodes), and a genuinely multi-rack grouping —
    // all inert for topology-blind policies.
    for npr in [3u32, 64, 2] {
        let cfg = SimConfig {
            nodes_per_rack: npr,
            ..churn_config()
        };
        let spec = ClusterSpec::homogeneous(3, 4).unwrap();
        let d = digest_of(cfg, spec, Churn, workload(8, 300.0, 3));
        assert_eq!(
            d, GOLDEN_CHURN,
            "nodes_per_rack={npr} perturbed the churn trajectory: 0x{d:016x}"
        );
    }
    for npr in [2u32, 16] {
        let cfg = SimConfig {
            nodes_per_rack: npr,
            ..quiet_config()
        };
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let d = digest_of(cfg, spec, FcfsPacked { gpus: 2 }, workload(6, 45.0, 11));
        assert_eq!(
            d, GOLDEN_QUIET,
            "nodes_per_rack={npr} perturbed the quiet trajectory: 0x{d:016x}"
        );
    }
}

/// Attaching a live telemetry recorder must not perturb the simulated
/// trajectory by a single byte: telemetry reads simulation state but
/// never feeds back into RNG draws or float accumulation order. The
/// pinned goldens double as the oracle. When the `telemetry` feature
/// is compiled out the same code path runs with the ZST no-op
/// recorder, so this test also pins the compiled-out digests.
#[test]
fn golden_trajectories_survive_live_telemetry() {
    use pollux_telemetry::{MemorySink, Recorder};
    use std::sync::Arc;

    let digest_with_recorder = |cfg: SimConfig,
                                spec: ClusterSpec,
                                policy: Box<dyn SchedulingPolicy>,
                                wl: Vec<(JobSpec, UserConfig)>|
     -> (u64, usize) {
        let sink = Arc::new(MemorySink::new(1 << 16));
        let recorder = Recorder::new(sink.clone() as Arc<dyn pollux_telemetry::Sink>);
        let result = Simulation::new(cfg, spec, policy, wl)
            .unwrap()
            .with_recorder(recorder)
            .run();
        let json = serde_json::to_string(&result).expect("SimResult serializes");
        (fnv1a64(json.as_bytes()), sink.len())
    };

    let (churn, churn_events) = digest_with_recorder(
        churn_config(),
        ClusterSpec::homogeneous(3, 4).unwrap(),
        Box::new(Churn),
        workload(8, 300.0, 3),
    );
    assert_eq!(
        churn, GOLDEN_CHURN,
        "telemetry perturbed the churn trajectory: 0x{churn:016x}"
    );
    let (quiet, quiet_events) = digest_with_recorder(
        quiet_config(),
        ClusterSpec::homogeneous(2, 4).unwrap(),
        Box::new(FcfsPacked { gpus: 2 }),
        workload(6, 45.0, 11),
    );
    assert_eq!(
        quiet, GOLDEN_QUIET,
        "telemetry perturbed the quiet trajectory: 0x{quiet:016x}"
    );

    // Prove the recorder was actually live (not silently disabled) in
    // full builds; compiled-out builds record nothing by design.
    #[cfg(feature = "telemetry")]
    {
        assert!(churn_events > 0, "churn run recorded no telemetry events");
        assert!(quiet_events > 0, "quiet run recorded no telemetry events");
    }
    #[cfg(not(feature = "telemetry"))]
    {
        assert_eq!(churn_events + quiet_events, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// Bitwise equality of the job-major engine, the retained
    /// tick-major chunk stepper, and the reference tick-stepper on
    /// random small workloads: varied arrival staggering, cluster
    /// shapes, interference levels, measurement noise, engine thread
    /// counts, work scales small enough to force mid-chunk finishes,
    /// and both churny (restart/preemption/interference-heavy) and
    /// quiet placement policies.
    #[test]
    fn macro_step_equals_reference_stepper(
        n_jobs in 1usize..6,
        stagger in 0.0f64..900.0,
        wl_seed in 0u64..1_000,
        sim_seed in 0u64..1_000,
        nodes in 1u32..4,
        gpus in 2u32..5,
        interference in 0.0f64..0.7,
        noise in 0.0f64..0.15,
        hours in 0.4f64..2.5,
        churny in 0u32..2,
        engine_threads in 1usize..5,
        work_scale in 0.02f64..1.0,
    ) {
        let cfg = SimConfig {
            max_sim_time: hours * 3600.0,
            interference_slowdown: interference,
            measurement_noise: noise,
            seed: sim_seed,
            engine_threads,
            ..Default::default()
        };
        let spec = ClusterSpec::homogeneous(nodes, gpus).unwrap();
        let wl = workload_scaled(n_jobs, stagger, wl_seed, work_scale);
        let runs: Vec<String> = if churny == 1 {
            [Stepper::JobMajor, Stepper::TickMajor, Stepper::Reference]
                .map(|s| json_of(cfg, spec.clone(), Churn, wl.clone(), s))
                .into_iter()
                .collect()
        } else {
            [Stepper::JobMajor, Stepper::TickMajor, Stepper::Reference]
                .map(|s| json_of(cfg, spec.clone(), FcfsPacked { gpus: 2 }, wl.clone(), s))
                .into_iter()
                .collect()
        };
        let label = format!(
            "jobs={n_jobs} stagger={stagger:.1} wl_seed={wl_seed} sim_seed={sim_seed} \
             nodes={nodes} gpus={gpus} interference={interference:.2} noise={noise:.3} \
             hours={hours:.2} churny={churny} engine_threads={engine_threads} \
             work_scale={work_scale:.3}"
        );
        assert_byte_identical(&runs[0], &runs[2], &format!("job-major vs reference: {label}"));
        assert_byte_identical(&runs[1], &runs[2], &format!("tick-major vs reference: {label}"));
    }
}
