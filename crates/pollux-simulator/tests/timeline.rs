//! Timeline fidelity: the lifecycle/round events captured by a live
//! recorder must reconstruct, on their own, exactly the per-job facts
//! the engine serializes into `SimResult` — submit, start, and finish
//! times, queue times, and restart counts. The reconstruction uses
//! *only* the event stream (no peeking at engine state), so it pins
//! the contract that a Chrome-trace export or an external audit tool
//! reading the JSONL capture sees the same run the digested result
//! describes — at every engine/scheduler thread count, since finish
//! events are emitted from parallel chunk workers.
#![cfg(feature = "telemetry")]

use std::collections::BTreeMap;
use std::sync::Arc;

use pollux_cluster::{AllocationMatrix, ClusterSpec, JobId};
use pollux_simulator::{PolicyJobView, SchedulingPolicy, SimConfig, Simulation};
use pollux_telemetry::{chrome, Event, MemorySink, Recorder, Sink};
use pollux_workload::{JobSpec, ModelKind, TraceConfig, TraceGenerator, UserConfig};
use rand::rngs::StdRng;

/// 64 staggered jobs drawn from the trace generator, work scaled down
/// so a healthy fraction crosses the finish line inside the horizon
/// (finish instants must be exercised, not just starts).
fn workload_64() -> Vec<(JobSpec, UserConfig)> {
    let trace = TraceGenerator::new(TraceConfig {
        num_jobs: 200,
        seed: 13,
        ..Default::default()
    })
    .unwrap()
    .generate();
    let wl: Vec<(JobSpec, UserConfig)> = trace
        .into_iter()
        .filter(|j| j.kind == ModelKind::ResNet18Cifar10 || j.kind == ModelKind::NeuMFMovieLens)
        .take(64)
        .enumerate()
        .map(|(i, mut spec)| {
            spec.id = JobId(i as u32);
            spec.submit_time = i as f64 * 90.0;
            spec.work *= 0.05;
            let user = spec.tuned;
            (spec, user)
        })
        .collect();
    assert_eq!(wl.len(), 64, "trace filter must yield 64 jobs");
    wl
}

/// Churny rotation policy (the macro_step idiom): placements rotate
/// with a slow phase so the run exercises restarts, preemptions, and
/// co-located distributed jobs.
#[derive(Clone, Copy)]
struct Churn;

impl SchedulingPolicy for Churn {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn adapts_batch_size(&self) -> bool {
        true
    }

    fn schedule(
        &mut self,
        now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> AllocationMatrix {
        let nodes = spec.num_nodes();
        let phase = (now / 600.0) as usize;
        let mut m = AllocationMatrix::zeros(jobs.len(), nodes);
        for (j, _) in jobs.iter().enumerate() {
            let start = (j + phase) % nodes;
            if (j + phase).is_multiple_of(3) {
                m.set(j, start, 1);
                m.set(j, (start + 1) % nodes, 1);
            } else {
                m.set(j, start, 1);
            }
        }
        m
    }
}

/// Per-job facts rebuilt purely from the event stream.
#[derive(Default, Debug, PartialEq)]
struct Rebuilt {
    submit_time: Option<f64>,
    start_time: Option<f64>,
    finish_time: Option<f64>,
    num_restarts: u32,
}

fn reconstruct(events: &[Event]) -> BTreeMap<u64, Rebuilt> {
    let mut jobs: BTreeMap<u64, Rebuilt> = BTreeMap::new();
    for e in events {
        let Event::Timeline {
            subsystem,
            name,
            time,
            job,
            ..
        } = e
        else {
            continue;
        };
        if subsystem != "lifecycle" {
            continue;
        }
        let entry = jobs.entry(*job).or_default();
        match name.as_ref() {
            "arrival" => entry.submit_time = Some(*time),
            // The planner grants a non-restart start exactly once per
            // job; keep the first defensively so a duplicate would
            // fail the comparison rather than mask itself.
            "start" => entry.start_time = entry.start_time.or(Some(*time)),
            "finish" => entry.finish_time = Some(*time),
            "restart" => entry.num_restarts += 1,
            _ => {}
        }
    }
    jobs
}

#[test]
fn timeline_events_reconstruct_sim_result_at_any_thread_count() {
    let spec = || ClusterSpec::homogeneous(16, 4).unwrap();
    for threads in [1usize, 2, 4] {
        let cfg = SimConfig {
            max_sim_time: 3.0 * 3600.0,
            interference_slowdown: 0.3,
            seed: 42,
            engine_threads: threads,
            sched_threads: threads,
            ..Default::default()
        };
        let sink = Arc::new(MemorySink::new(1 << 20));
        let recorder = Recorder::new(sink.clone() as Arc<dyn Sink>);
        let result = Simulation::new(cfg, spec(), Churn, workload_64())
            .unwrap()
            .with_recorder(recorder)
            .run();
        let events = sink.drain();

        // The capture must be complete: a lossy sink cannot prove
        // fidelity (the flush marker surfaces any eviction).
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, Event::Count { name, .. } if name == "dropped_events")),
            "threads={threads}: the sink dropped events"
        );

        let rebuilt = reconstruct(&events);
        assert_eq!(
            rebuilt.len(),
            result.records.len(),
            "threads={threads}: every job must appear on the timeline"
        );
        let mut finished = 0usize;
        let mut restarts = 0u32;
        for record in &result.records {
            let got = rebuilt
                .get(&u64::from(record.id.0))
                .unwrap_or_else(|| panic!("job {:?} missing from the timeline", record.id));
            assert_eq!(
                got.submit_time,
                Some(record.submit_time),
                "threads={threads}: submit time of {:?}",
                record.id
            );
            assert_eq!(
                got.start_time, record.start_time,
                "threads={threads}: start time of {:?}",
                record.id
            );
            assert_eq!(
                got.finish_time, record.finish_time,
                "threads={threads}: finish time of {:?}",
                record.id
            );
            assert_eq!(
                got.num_restarts, record.num_restarts,
                "threads={threads}: restart count of {:?}",
                record.id
            );
            // Queue time is derived, so it matches by construction —
            // assert anyway to pin the definition.
            let queue = got.start_time.map(|s| s - got.submit_time.unwrap());
            assert_eq!(
                queue,
                record.start_time.map(|s| s - record.submit_time),
                "threads={threads}: queue time of {:?}",
                record.id
            );
            finished += usize::from(record.finish_time.is_some());
            restarts += record.num_restarts;
        }
        assert!(
            finished >= 16,
            "threads={threads}: workload too idle ({finished} finishes) to pin fidelity"
        );
        assert!(
            restarts > 0,
            "threads={threads}: churn policy must cause restarts"
        );

        // Placement occupancy slices (the Chrome exporter's input)
        // must stay inside each job's active window.
        let by_id: BTreeMap<u64, &pollux_simulator::JobRecord> = result
            .records
            .iter()
            .map(|r| (u64::from(r.id.0), r))
            .collect();
        let slices = chrome::node_slices(&events);
        assert!(
            !slices.is_empty(),
            "threads={threads}: placement diffs must open node slices"
        );
        for s in &slices {
            let record = by_id[&s.job];
            let started = record.start_time.expect("sliced jobs were placed");
            assert!(
                s.start >= started - 1e-9,
                "threads={threads}: job {} occupies node {} at {} before its start {}",
                s.job,
                s.node,
                s.start,
                started
            );
            if let Some(finish) = record.finish_time {
                assert!(
                    s.end <= finish + 1e-9,
                    "threads={threads}: job {} occupies node {} until {} after its finish {}",
                    s.job,
                    s.node,
                    s.end,
                    finish
                );
            }
            assert!((s.node as usize) < 16, "slice on a nonexistent node");
            assert!(s.gpus > 0 && s.gpus <= 4, "per-node GPU count in range");
        }
    }
}
