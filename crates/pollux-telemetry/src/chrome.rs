//! Chrome-trace (Perfetto) export of a telemetry capture.
//!
//! [`chrome_trace`] converts a captured event stream into the Chrome
//! trace-event JSON format (`{"traceEvents":[...]}`), loadable in
//! `ui.perfetto.dev` or `chrome://tracing`:
//!
//! - one *process* per rack holding one *thread* (track) per node;
//!   complete (`"ph":"X"`) slices on a node track are job occupancies
//!   derived from `"placement"` timeline diffs, with held-GPU counts
//!   in `args`;
//! - a `cluster` process carrying counter (`"ph":"C"`) tracks —
//!   goodput, used GPUs, queue depth — from the engine's
//!   `cluster_sample` points, plus instant (`"ph":"i"`) markers for
//!   job arrivals, restarts, and finishes;
//! - a `host (wall clock)` process with the recorder's wall-clock
//!   spans, one track per subsystem. Its timebase is nanoseconds from
//!   recorder creation, unrelated to simulation time; it lives in a
//!   separate process so the tracks are never visually conflated.
//!
//! Timestamps are microseconds: simulation seconds × 10⁶ for the sim
//! processes, `start_ns` / 10³ for the wall-clock process. The export
//! is a pure function of the event multiset — rows are sorted before
//! rendering, so thread-interleaved captures of the same run produce
//! byte-identical traces.

use crate::event::Event;
use crate::json;
use std::collections::{BTreeMap, BTreeSet};

/// Process id for cluster-wide counter tracks and instant markers.
const CLUSTER_PID: u64 = 0;
/// Process id of the first rack; rack `r` maps to `RACK_PID0 + r`.
const RACK_PID0: u64 = 1;
/// Process id for wall-clock span tracks.
const WALL_PID: u64 = 9_999;

/// One output row: a sort key plus the rendered JSON object.
struct Row {
    pid: u64,
    tid: u64,
    ts: f64,
    body: String,
}

/// Counts of the interesting phases in a rendered trace, used by CI
/// smoke checks and tests (see [`stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChromeStats {
    /// Complete (`"ph":"X"`) slices.
    pub slices: usize,
    /// Counter (`"ph":"C"`) samples.
    pub counters: usize,
    /// Instant (`"ph":"i"`) markers.
    pub instants: usize,
}

/// Parses a rendered Chrome trace back and tallies its phases.
/// Returns `None` if `text` is not valid JSON of the expected shape —
/// which is exactly what a CI smoke check wants to detect.
pub fn stats(text: &str) -> Option<ChromeStats> {
    let v = json::parse(text)?;
    let events = v.get("traceEvents")?.as_arr()?;
    let mut out = ChromeStats::default();
    for e in events {
        match e.get("ph")?.as_str()? {
            "X" => out.slices += 1,
            "C" => out.counters += 1,
            "i" => out.instants += 1,
            _ => {}
        }
    }
    Some(out)
}

/// A job occupancy interval on one node, reconstructed from the
/// placement timeline (also the unit the fidelity tests compare
/// against `SimResult` records).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSlice {
    /// Node index (cluster-wide).
    pub node: u32,
    /// Job identifier.
    pub job: u64,
    /// GPUs the job held on this node over the interval.
    pub gpus: u32,
    /// Interval start (simulation seconds).
    pub start: f64,
    /// Interval end (simulation seconds).
    pub end: f64,
}

/// Reconstructs per-node job occupancy intervals from the timeline
/// events in `events`. Slices still open at the last observed
/// timestamp are closed there. Output is sorted by
/// `(node, start, job)`.
pub fn node_slices(events: &[Event]) -> Vec<NodeSlice> {
    // Open slice per (job, node): (gpus, start).
    let mut open: BTreeMap<(u64, u32), (u32, f64)> = BTreeMap::new();
    let mut done: Vec<NodeSlice> = Vec::new();
    let mut end_time: f64 = 0.0;
    let close = |open: &mut BTreeMap<(u64, u32), (u32, f64)>,
                 done: &mut Vec<NodeSlice>,
                 job: u64,
                 node: u32,
                 at: f64| {
        if let Some((gpus, start)) = open.remove(&(job, node)) {
            done.push(NodeSlice {
                node,
                job,
                gpus,
                start,
                end: at,
            });
        }
    };
    // Process timeline events in simulation-time order: captures from
    // multi-threaded runs interleave lifecycle events arbitrarily, and
    // the open/close bookkeeping below needs per-(job, node) diffs in
    // causal order. The sort key is total, so any permutation of the
    // same events yields the same slices.
    type TimelineRow<'a> = (&'a f64, &'a str, &'a u64, &'a Vec<u32>, &'a Vec<u32>);
    let mut timeline: Vec<TimelineRow<'_>> = Vec::new();
    for e in events {
        match e {
            Event::Timeline {
                name,
                time,
                job,
                old,
                new,
                ..
            } => timeline.push((time, name.as_ref(), job, old, new)),
            Event::Point { time, .. } => end_time = end_time.max(*time),
            _ => {}
        }
    }
    timeline.sort_by(|a, b| {
        a.0.total_cmp(b.0)
            .then_with(|| (a.1, a.2, a.3, a.4).cmp(&(b.1, b.2, b.3, b.4)))
    });
    for (time, name, job, old, new) in timeline {
        end_time = end_time.max(*time);
        match name {
            "placement" => {
                let width = old.len().max(new.len());
                for n in 0..width {
                    let was = old.get(n).copied().unwrap_or(0);
                    let now = new.get(n).copied().unwrap_or(0);
                    if was == now {
                        continue;
                    }
                    if was > 0 {
                        close(&mut open, &mut done, *job, n as u32, *time);
                    }
                    if now > 0 {
                        open.insert((*job, n as u32), (now, *time));
                    }
                }
            }
            "finish" | "preempt" => {
                let nodes: Vec<u32> = open
                    .keys()
                    .filter(|(j, _)| j == job)
                    .map(|&(_, n)| n)
                    .collect();
                for n in nodes {
                    close(&mut open, &mut done, *job, n, *time);
                }
            }
            _ => {}
        }
    }
    let still_open: Vec<(u64, u32)> = open.keys().copied().collect();
    for (job, node) in still_open {
        close(&mut open, &mut done, job, node, end_time);
    }
    done.sort_by(|a, b| {
        (a.node, a.job)
            .cmp(&(b.node, b.job))
            .then(a.start.total_cmp(&b.start))
    });
    done
}

fn push_meta(rows: &mut Vec<Row>, pid: u64, tid: Option<u64>, which: &str, name: &str) {
    let mut body = format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":",
        tid.unwrap_or(0)
    );
    json::write_str(&mut body, which);
    body.push_str(",\"args\":{\"name\":");
    json::write_str(&mut body, name);
    body.push_str("}}");
    rows.push(Row {
        pid,
        tid: tid.unwrap_or(0),
        ts: -1.0,
        body,
    });
}

/// Renders `events` as Chrome trace JSON. Pure and deterministic: the
/// output depends only on the multiset of events, not their order.
pub fn chrome_trace(events: &[Event]) -> String {
    // Topology, if the engine stamped one: nodes_per_rack for the
    // rack grouping. Fallback: every node in one rack.
    let mut num_nodes: u32 = 0;
    let mut nodes_per_rack: u32 = 0;
    for e in events {
        if let Event::Point {
            subsystem,
            name,
            fields,
            ..
        } = e
        {
            if subsystem == "engine" && name == "topology" {
                for (k, v) in fields {
                    match k.as_ref() {
                        "num_nodes" => num_nodes = *v as u32,
                        "nodes_per_rack" => nodes_per_rack = *v as u32,
                        _ => {}
                    }
                }
            }
        }
        if let Event::Timeline { old, new, .. } = e {
            num_nodes = num_nodes.max(old.len().max(new.len()) as u32);
        }
    }
    let rack_of = |node: u32| -> u64 { node.checked_div(nodes_per_rack).unwrap_or(0) as u64 };

    // Scheduler identity, if the run stamped any (`sched/*` metas):
    // the policy names the cluster process so zoo traces are
    // self-describing in the Perfetto process list, and every meta is
    // echoed under `otherData`. Values are deduplicated and joined
    // sorted, so a capture holding several sequential runs stays
    // order-independent.
    let mut metas: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for e in events {
        if let Event::Meta {
            subsystem,
            name,
            value,
        } = e
        {
            metas
                .entry((subsystem.to_string(), name.to_string()))
                .or_default()
                .insert(value.to_string());
        }
    }
    let joined = |key: (&str, &str)| -> Option<String> {
        metas
            .get(&(key.0.to_string(), key.1.to_string()))
            .map(|vs| vs.iter().cloned().collect::<Vec<_>>().join(", "))
    };
    let cluster_name = match joined(("sched", "policy")) {
        Some(p) => format!("cluster ({p})"),
        None => "cluster".to_string(),
    };

    let mut rows: Vec<Row> = Vec::new();

    // Process / thread names.
    push_meta(&mut rows, CLUSTER_PID, None, "process_name", &cluster_name);
    let num_racks = if num_nodes == 0 {
        0
    } else {
        rack_of(num_nodes - 1) + 1
    };
    for r in 0..num_racks {
        push_meta(
            &mut rows,
            RACK_PID0 + r,
            None,
            "process_name",
            &format!("rack {r}"),
        );
    }
    for n in 0..num_nodes {
        push_meta(
            &mut rows,
            RACK_PID0 + rack_of(n),
            Some(n as u64),
            "thread_name",
            &format!("node {n}"),
        );
    }

    // Job occupancy slices.
    for s in node_slices(events) {
        let pid = RACK_PID0 + rack_of(s.node);
        let ts = s.start * 1e6;
        let dur = (s.end - s.start).max(0.0) * 1e6;
        let mut body = format!("{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":", s.node);
        json::write_f64(&mut body, ts);
        body.push_str(",\"dur\":");
        json::write_f64(&mut body, dur);
        body.push_str(",\"name\":");
        json::write_str(&mut body, &format!("job {}", s.job));
        body.push_str(&format!(
            ",\"cat\":\"placement\",\"args\":{{\"job\":{},\"gpus\":{}}}}}",
            s.job, s.gpus
        ));
        rows.push(Row {
            pid,
            tid: s.node as u64,
            ts,
            body,
        });
    }

    // Cluster counter tracks + instant markers.
    for e in events {
        match e {
            Event::Point {
                subsystem,
                name,
                time,
                fields,
            } if subsystem == "engine" && name == "cluster_sample" => {
                let ts = *time * 1e6;
                for &(counter, field) in &[
                    ("goodput", "goodput"),
                    ("used GPUs", "used_gpus"),
                    ("queue depth", "pending_jobs"),
                ] {
                    let Some(v) = fields.iter().find(|(k, _)| k == field).map(|&(_, v)| v) else {
                        continue;
                    };
                    let mut body =
                        format!("{{\"ph\":\"C\",\"pid\":{CLUSTER_PID},\"tid\":0,\"ts\":");
                    json::write_f64(&mut body, ts);
                    body.push_str(",\"name\":");
                    json::write_str(&mut body, counter);
                    body.push_str(",\"args\":{");
                    json::write_str(&mut body, field);
                    body.push(':');
                    json::write_f64(&mut body, v);
                    body.push_str("}}");
                    rows.push(Row {
                        pid: CLUSTER_PID,
                        tid: 0,
                        ts,
                        body,
                    });
                }
            }
            Event::Timeline {
                name, time, job, ..
            } if matches!(name.as_ref(), "arrival" | "restart" | "finish") => {
                let ts = *time * 1e6;
                let mut body = format!("{{\"ph\":\"i\",\"pid\":{CLUSTER_PID},\"tid\":0,\"ts\":");
                json::write_f64(&mut body, ts);
                body.push_str(",\"s\":\"p\",\"name\":");
                json::write_str(&mut body, &format!("{name} job {job}"));
                body.push('}');
                rows.push(Row {
                    pid: CLUSTER_PID,
                    tid: 0,
                    ts,
                    body,
                });
            }
            _ => {}
        }
    }

    // Wall-clock spans, one track per subsystem.
    let mut span_tids: BTreeMap<String, u64> = BTreeMap::new();
    for e in events {
        if let Event::Span { subsystem, .. } = e {
            let next = span_tids.len() as u64;
            span_tids.entry(subsystem.to_string()).or_insert(next);
        }
    }
    if !span_tids.is_empty() {
        push_meta(
            &mut rows,
            WALL_PID,
            None,
            "process_name",
            "host (wall clock)",
        );
        for (sub, tid) in &span_tids {
            push_meta(&mut rows, WALL_PID, Some(*tid), "thread_name", sub);
        }
        for e in events {
            if let Event::Span {
                subsystem,
                name,
                start_ns,
                dur_ns,
            } = e
            {
                let tid = span_tids[subsystem.as_ref()];
                let ts = *start_ns as f64 / 1e3;
                let mut body = format!("{{\"ph\":\"X\",\"pid\":{WALL_PID},\"tid\":{tid},\"ts\":");
                json::write_f64(&mut body, ts);
                body.push_str(",\"dur\":");
                json::write_f64(&mut body, *dur_ns as f64 / 1e3);
                body.push_str(",\"name\":");
                json::write_str(&mut body, name);
                body.push('}');
                rows.push(Row {
                    pid: WALL_PID,
                    tid,
                    ts,
                    body,
                });
            }
        }
    }

    // Deterministic render order regardless of capture interleaving.
    rows.sort_by(|a, b| {
        (a.pid, a.tid)
            .cmp(&(b.pid, b.tid))
            .then(a.ts.total_cmp(&b.ts))
            .then_with(|| a.body.cmp(&b.body))
    });

    let mut out = String::with_capacity(rows.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&row.body);
    }
    out.push_str("\n]");
    if !metas.is_empty() {
        out.push_str(",\"otherData\":{");
        for (i, ((sub, name), vs)) in metas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, &format!("{sub}/{name}"));
            out.push(':');
            let joined = vs.iter().cloned().collect::<Vec<_>>().join(", ");
            json::write_str(&mut out, &joined);
        }
        out.push('}');
    }
    out.push_str("}\n");
    out
}

/// Convenience for tooling: render `events` and count phases without
/// re-parsing.
pub fn export_with_stats(events: &[Event]) -> (String, ChromeStats) {
    let text = chrome_trace(events);
    let s = stats(&text).unwrap_or_default();
    (text, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn tl(kind: &'static str, time: f64, job: u64, old: &[u32], new: &[u32]) -> Event {
        Event::Timeline {
            subsystem: Cow::Borrowed("round"),
            name: Cow::Borrowed(kind),
            time,
            job,
            old: old.to_vec(),
            new: new.to_vec(),
        }
    }

    fn sample(time: f64, goodput: f64) -> Event {
        Event::Point {
            subsystem: "engine".into(),
            name: "cluster_sample".into(),
            time,
            fields: vec![
                ("goodput".into(), goodput),
                ("used_gpus".into(), 4.0),
                ("pending_jobs".into(), 1.0),
            ],
        }
    }

    fn topology(num_nodes: f64, nodes_per_rack: f64) -> Event {
        Event::Point {
            subsystem: "engine".into(),
            name: "topology".into(),
            time: 0.0,
            fields: vec![
                ("num_nodes".into(), num_nodes),
                ("nodes_per_rack".into(), nodes_per_rack),
            ],
        }
    }

    #[test]
    fn placement_diffs_become_node_slices() {
        let events = [
            tl("placement", 10.0, 1, &[0, 0], &[2, 2]),
            tl("placement", 50.0, 1, &[2, 2], &[4, 0]),
            tl("finish", 90.0, 1, &[], &[]),
        ];
        let slices = node_slices(&events);
        assert_eq!(
            slices,
            vec![
                NodeSlice {
                    node: 0,
                    job: 1,
                    gpus: 2,
                    start: 10.0,
                    end: 50.0
                },
                NodeSlice {
                    node: 0,
                    job: 1,
                    gpus: 4,
                    start: 50.0,
                    end: 90.0
                },
                NodeSlice {
                    node: 1,
                    job: 1,
                    gpus: 2,
                    start: 10.0,
                    end: 50.0
                },
            ]
        );
    }

    #[test]
    fn unclosed_slices_end_at_last_timestamp() {
        let events = [
            tl("placement", 5.0, 3, &[0], &[1]),
            sample(40.0, 1.0), // run keeps going past the last diff
        ];
        let slices = node_slices(&events);
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].end, 40.0);
    }

    #[test]
    fn trace_parses_and_counts_phases() {
        let events = [
            topology(4.0, 2.0),
            tl("arrival", 0.0, 7, &[], &[]),
            tl("placement", 10.0, 7, &[0, 0, 0, 0], &[0, 0, 2, 0]),
            tl("restart", 60.0, 7, &[], &[]),
            tl("placement", 60.0, 7, &[0, 0, 2, 0], &[4, 0, 0, 0]),
            sample(30.0, 2.5),
            sample(90.0, 3.5),
            tl("finish", 100.0, 7, &[], &[]),
            Event::Span {
                subsystem: "engine".into(),
                name: "reschedule".into(),
                start_ns: 1_000,
                dur_ns: 5_000,
            },
        ];
        let (text, s) = export_with_stats(&events);
        assert_eq!(s.slices, 3, "2 sim occupancies + 1 wall span:\n{text}");
        assert_eq!(s.counters, 6, "3 counters × 2 samples");
        assert_eq!(s.instants, 3, "arrival + restart + finish");
        // Rack grouping: node 2 sits in rack 1 → pid 2.
        let v = json::parse(&text).expect("trace is valid JSON");
        let slices: Vec<_> = v
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .filter(|e| e.get("cat").is_some())
            .collect();
        assert_eq!(slices[0].get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(slices[0].get("tid").unwrap().as_u64(), Some(0));
        assert_eq!(slices[1].get("pid").unwrap().as_u64(), Some(2));
        assert_eq!(slices[1].get("tid").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn export_is_order_insensitive() {
        let mut events = vec![
            topology(2.0, 0.0),
            tl("placement", 1.0, 1, &[0, 0], &[1, 0]),
            tl("placement", 2.0, 2, &[0, 0], &[0, 1]),
            sample(3.0, 1.0),
            tl("finish", 4.0, 1, &[], &[]),
            tl("finish", 5.0, 2, &[], &[]),
        ];
        let a = chrome_trace(&events);
        events.reverse();
        let b = chrome_trace(&events);
        assert_eq!(a, b);
    }
}
