//! The telemetry event vocabulary and its JSONL form.

use crate::json::{self, JsonValue};
use std::borrow::Cow;

/// One telemetry event. Every variant carries a `(subsystem, name)`
/// pair — e.g. `("engine", "chunk_ticks")` — that report tooling
/// groups by.
///
/// Names are `Cow<'static, str>` so the recorder's hot path (span
/// drops, per-sample points) borrows the `&'static str` literals at
/// call sites instead of allocating; only [`Event::parse_jsonl`]
/// produces owned strings.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A closed wall-clock span. `start_ns` is relative to the
    /// recorder's creation; both fields are machine-dependent and must
    /// never feed back into deterministic state.
    Span {
        /// Subsystem that opened the span.
        subsystem: Cow<'static, str>,
        /// Span name.
        name: Cow<'static, str>,
        /// Nanoseconds from recorder creation to span start.
        start_ns: u64,
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A counter snapshot (cumulative value at flush time).
    Count {
        /// Subsystem owning the counter.
        subsystem: Cow<'static, str>,
        /// Counter name.
        name: Cow<'static, str>,
        /// Cumulative value.
        value: u64,
    },
    /// A histogram snapshot: total observation count plus sparse
    /// `(bucket_index, count)` pairs (see [`crate::Histogram`] for the
    /// bucket-to-range mapping).
    Hist {
        /// Subsystem owning the histogram.
        subsystem: Cow<'static, str>,
        /// Histogram name.
        name: Cow<'static, str>,
        /// Total observations.
        count: u64,
        /// Non-empty `(bucket, count)` pairs, ascending by bucket.
        buckets: Vec<(u8, u64)>,
    },
    /// One time-series point: a simulation-time stamp plus named `f64`
    /// fields (e.g. the per-interval cluster goodput sample).
    Point {
        /// Subsystem emitting the series.
        subsystem: Cow<'static, str>,
        /// Series name.
        name: Cow<'static, str>,
        /// Simulation time of the point (seconds; *not* wall clock).
        time: f64,
        /// Named values, in emission order.
        fields: Vec<(Cow<'static, str>, f64)>,
    },
    /// A placement-timeline event: a job lifecycle transition
    /// (`"arrival"`, `"start"`, `"restart"`, `"wake"`, `"preempt"`,
    /// `"finish"` — `old`/`new` empty) or a placement diff
    /// (`"placement"` — `old`/`new` are cluster-width GPUs-per-node
    /// rows). Timestamps are simulation seconds; wall clock never
    /// enters this variant.
    Timeline {
        /// Subsystem emitting the event (`"lifecycle"` or `"round"`).
        subsystem: Cow<'static, str>,
        /// Event kind (doubles as the event name).
        name: Cow<'static, str>,
        /// Simulation time of the transition (seconds).
        time: f64,
        /// Job identifier (`JobId.0` widened).
        job: u64,
        /// Previous GPUs-per-node row (empty for instants).
        old: Vec<u32>,
        /// New GPUs-per-node row (empty for instants).
        new: Vec<u32>,
    },
    /// A string-valued metadata record, e.g. `("sched", "policy")` =
    /// `"tiresias"` so report tooling and the Chrome trace can say
    /// which policy (and which stages) produced a capture. Unlike
    /// [`Event::Point`] fields, the value is text, not `f64`.
    Meta {
        /// Subsystem owning the metadata.
        subsystem: Cow<'static, str>,
        /// Metadata key.
        name: Cow<'static, str>,
        /// Metadata value.
        value: Cow<'static, str>,
    },
    /// One scheduling round's decision audit (see [`RoundExplain`]).
    /// Fixed `("sched", "round_explain")` identity.
    Round(RoundExplain),
}

/// Why one scheduling round decided what it did: the fitness the
/// optimizer achieved, the fitness of leaving every job where it was,
/// and a per-job breakdown ([`JobExplain`]). Serialized through
/// [`Event::Round`]; all quantities are derived from scheduler state
/// without touching its RNG or cached counters, so emitting (or not
/// emitting) a `RoundExplain` never perturbs the simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundExplain {
    /// Simulation time of the round (seconds).
    pub time: f64,
    /// Weighted-average SPEEDUP fitness of the chosen allocation
    /// (restart penalties included).
    pub fitness: f64,
    /// Fitness of the status-quo allocation (no penalties — nothing
    /// would move), for the round's fitness delta.
    pub fitness_before: f64,
    /// Whether the rack-decomposed GA path produced this round.
    pub racked: bool,
    /// Per-job decisions, in scheduler row order.
    pub jobs: Vec<JobExplain>,
}

/// One job's slice of a [`RoundExplain`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobExplain {
    /// Job identifier (`JobId.0` widened).
    pub job: u64,
    /// Fairness weight used by the fitness function.
    pub weight: f64,
    /// SPEEDUP of the job's placement entering the round.
    pub speedup_before: f64,
    /// SPEEDUP of the placement the round chose.
    pub speedup_after: f64,
    /// Restart penalty charged against this job in the chosen
    /// allocation (0 when it did not move or had not started).
    pub restart_penalty: f64,
    /// Rack assigned in the previous racked round (-1 if none).
    pub rack_before: i64,
    /// Rack assigned this round (-1 for the flat path).
    pub rack_after: i64,
    /// GPUs held entering the round.
    pub gpus_before: u32,
    /// GPUs granted by the round.
    pub gpus_after: u32,
    /// Jobs sharing at least one node with this one after the round
    /// (interference co-residents), ascending.
    pub co_residents: Vec<u64>,
}

fn write_u32_arr(out: &mut String, vals: &[u32]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{v}"));
    }
    out.push(']');
}

fn parse_u32_arr(v: &JsonValue) -> Option<Vec<u32>> {
    v.as_arr()?
        .iter()
        .map(|x| x.as_u64().map(|n| n.min(u32::MAX as u64) as u32))
        .collect()
}

impl Event {
    /// The subsystem this event belongs to.
    pub fn subsystem(&self) -> &str {
        match self {
            Event::Span { subsystem, .. }
            | Event::Count { subsystem, .. }
            | Event::Hist { subsystem, .. }
            | Event::Point { subsystem, .. }
            | Event::Timeline { subsystem, .. }
            | Event::Meta { subsystem, .. } => subsystem,
            Event::Round(_) => "sched",
        }
    }

    /// The event name within its subsystem.
    pub fn name(&self) -> &str {
        match self {
            Event::Span { name, .. }
            | Event::Count { name, .. }
            | Event::Hist { name, .. }
            | Event::Point { name, .. }
            | Event::Timeline { name, .. }
            | Event::Meta { name, .. } => name,
            Event::Round(_) => "round_explain",
        }
    }

    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        let header = |out: &mut String, t: &str, sub: &str, name: &str| {
            out.push_str("{\"t\":\"");
            out.push_str(t);
            out.push_str("\",\"sub\":");
            json::write_str(out, sub);
            out.push_str(",\"name\":");
            json::write_str(out, name);
        };
        match self {
            Event::Span {
                subsystem,
                name,
                start_ns,
                dur_ns,
            } => {
                header(&mut out, "span", subsystem, name);
                out.push_str(&format!(",\"start_ns\":{start_ns},\"dur_ns\":{dur_ns}}}"));
            }
            Event::Count {
                subsystem,
                name,
                value,
            } => {
                header(&mut out, "count", subsystem, name);
                out.push_str(&format!(",\"value\":{value}}}"));
            }
            Event::Hist {
                subsystem,
                name,
                count,
                buckets,
            } => {
                header(&mut out, "hist", subsystem, name);
                out.push_str(&format!(",\"count\":{count},\"buckets\":["));
                for (i, (b, c)) in buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{b},{c}]"));
                }
                out.push_str("]}");
            }
            Event::Point {
                subsystem,
                name,
                time,
                fields,
            } => {
                header(&mut out, "point", subsystem, name);
                out.push_str(",\"time\":");
                json::write_f64(&mut out, *time);
                out.push_str(",\"fields\":{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::write_str(&mut out, k);
                    out.push(':');
                    json::write_f64(&mut out, *v);
                }
                out.push_str("}}");
            }
            Event::Timeline {
                subsystem,
                name,
                time,
                job,
                old,
                new,
            } => {
                header(&mut out, "timeline", subsystem, name);
                out.push_str(",\"time\":");
                json::write_f64(&mut out, *time);
                out.push_str(&format!(",\"job\":{job},\"old\":"));
                write_u32_arr(&mut out, old);
                out.push_str(",\"new\":");
                write_u32_arr(&mut out, new);
                out.push('}');
            }
            Event::Meta {
                subsystem,
                name,
                value,
            } => {
                header(&mut out, "meta", subsystem, name);
                out.push_str(",\"value\":");
                json::write_str(&mut out, value);
                out.push('}');
            }
            Event::Round(ex) => {
                header(&mut out, "round", "sched", "round_explain");
                out.push_str(",\"time\":");
                json::write_f64(&mut out, ex.time);
                out.push_str(",\"fitness\":");
                json::write_f64(&mut out, ex.fitness);
                out.push_str(",\"fitness_before\":");
                json::write_f64(&mut out, ex.fitness_before);
                out.push_str(if ex.racked {
                    ",\"racked\":true"
                } else {
                    ",\"racked\":false"
                });
                out.push_str(",\"jobs\":[");
                for (i, j) in ex.jobs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{{\"job\":{},\"weight\":", j.job));
                    json::write_f64(&mut out, j.weight);
                    out.push_str(",\"su_before\":");
                    json::write_f64(&mut out, j.speedup_before);
                    out.push_str(",\"su_after\":");
                    json::write_f64(&mut out, j.speedup_after);
                    out.push_str(",\"penalty\":");
                    json::write_f64(&mut out, j.restart_penalty);
                    out.push_str(&format!(
                        ",\"rack_before\":{},\"rack_after\":{},\"gpus_before\":{},\"gpus_after\":{},\"co\":[",
                        j.rack_before, j.rack_after, j.gpus_before, j.gpus_after
                    ));
                    for (k, c) in j.co_residents.iter().enumerate() {
                        if k > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("{c}"));
                    }
                    out.push_str("]}");
                }
                out.push_str("]}");
            }
        }
        out
    }

    /// Parses one JSONL line produced by [`Self::to_jsonl`]. Returns
    /// `None` for blank lines, malformed JSON, or unknown event types
    /// (callers should skip those rather than abort a whole capture).
    pub fn parse_jsonl(line: &str) -> Option<Event> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let v = json::parse(line)?;
        let sub: Cow<'static, str> = Cow::Owned(v.get("sub")?.as_str()?.to_string());
        let name: Cow<'static, str> = Cow::Owned(v.get("name")?.as_str()?.to_string());
        match v.get("t")?.as_str()? {
            "span" => Some(Event::Span {
                subsystem: sub,
                name,
                start_ns: v.get("start_ns")?.as_u64()?,
                dur_ns: v.get("dur_ns")?.as_u64()?,
            }),
            "count" => Some(Event::Count {
                subsystem: sub,
                name,
                value: v.get("value")?.as_u64()?,
            }),
            "hist" => {
                let mut buckets = Vec::new();
                for pair in v.get("buckets")?.as_arr()? {
                    let pair = pair.as_arr()?;
                    if pair.len() != 2 {
                        return None;
                    }
                    buckets.push((pair[0].as_u64()?.min(255) as u8, pair[1].as_u64()?));
                }
                Some(Event::Hist {
                    subsystem: sub,
                    name,
                    count: v.get("count")?.as_u64()?,
                    buckets,
                })
            }
            "point" => {
                let fields = match v.get("fields")? {
                    JsonValue::Obj(pairs) => pairs
                        .iter()
                        .map(|(k, val)| Some((Cow::Owned(k.clone()), val.as_f64().unwrap_or(0.0))))
                        .collect::<Option<Vec<_>>>()?,
                    _ => return None,
                };
                Some(Event::Point {
                    subsystem: sub,
                    name,
                    time: v.get("time")?.as_f64().unwrap_or(0.0),
                    fields,
                })
            }
            "timeline" => Some(Event::Timeline {
                subsystem: sub,
                name,
                time: v.get("time")?.as_f64().unwrap_or(0.0),
                job: v.get("job")?.as_u64()?,
                old: parse_u32_arr(v.get("old")?)?,
                new: parse_u32_arr(v.get("new")?)?,
            }),
            "meta" => Some(Event::Meta {
                subsystem: sub,
                name,
                value: Cow::Owned(v.get("value")?.as_str()?.to_string()),
            }),
            "round" => {
                let mut jobs = Vec::new();
                for j in v.get("jobs")?.as_arr()? {
                    let mut co = Vec::new();
                    for c in j.get("co")?.as_arr()? {
                        co.push(c.as_u64()?);
                    }
                    jobs.push(JobExplain {
                        job: j.get("job")?.as_u64()?,
                        weight: j.get("weight")?.as_f64()?,
                        speedup_before: j.get("su_before")?.as_f64()?,
                        speedup_after: j.get("su_after")?.as_f64()?,
                        restart_penalty: j.get("penalty")?.as_f64()?,
                        rack_before: j.get("rack_before")?.as_f64()? as i64,
                        rack_after: j.get("rack_after")?.as_f64()? as i64,
                        gpus_before: j.get("gpus_before")?.as_u64()?.min(u32::MAX as u64) as u32,
                        gpus_after: j.get("gpus_after")?.as_u64()?.min(u32::MAX as u64) as u32,
                        co_residents: co,
                    });
                }
                Some(Event::Round(RoundExplain {
                    time: v.get("time")?.as_f64().unwrap_or(0.0),
                    fitness: v.get("fitness")?.as_f64().unwrap_or(0.0),
                    fitness_before: v.get("fitness_before")?.as_f64().unwrap_or(0.0),
                    racked: matches!(v.get("racked")?, JsonValue::Bool(true)),
                    jobs,
                }))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips() {
        let events = [
            Event::Span {
                subsystem: "engine".into(),
                name: "reschedule".into(),
                start_ns: 12,
                dur_ns: 34_000,
            },
            Event::Count {
                subsystem: "sched".into(),
                name: "fitness_evals".into(),
                // Integers round-trip exactly through the reader's f64
                // representation up to 2^53 — far above any real count.
                value: (1 << 53) - 1,
            },
            Event::Hist {
                subsystem: "engine".into(),
                name: "chunk_ticks".into(),
                count: 18,
                buckets: vec![(0, 1), (6, 17)],
            },
            Event::Point {
                subsystem: "engine".into(),
                name: "cluster_sample".into(),
                time: 3600.0,
                fields: vec![("goodput".into(), 120.5), ("used_gpus".into(), 14.0)],
            },
            Event::Timeline {
                subsystem: "round".into(),
                name: "placement".into(),
                time: 120.0,
                job: 7,
                old: vec![0, 0, 2, 0],
                new: vec![4, 4, 0, 0],
            },
            Event::Timeline {
                subsystem: "lifecycle".into(),
                name: "finish".into(),
                time: 9000.25,
                job: 3,
                old: vec![],
                new: vec![],
            },
            Event::Meta {
                subsystem: "sched".into(),
                name: "policy".into(),
                value: "tiresias \"quoted\"".into(),
            },
            Event::Round(RoundExplain {
                time: 60.0,
                fitness: 0.83,
                fitness_before: 0.79,
                racked: true,
                jobs: vec![JobExplain {
                    job: 7,
                    weight: 1.0,
                    speedup_before: 0.5,
                    speedup_after: 0.75,
                    restart_penalty: 0.25,
                    rack_before: -1,
                    rack_after: 2,
                    gpus_before: 2,
                    gpus_after: 8,
                    co_residents: vec![3, 9],
                }],
            }),
        ];
        for e in events {
            let line = e.to_jsonl();
            assert_eq!(Event::parse_jsonl(&line).as_ref(), Some(&e), "{line}");
        }
    }

    #[test]
    fn skips_blanks_and_garbage() {
        assert_eq!(Event::parse_jsonl(""), None);
        assert_eq!(Event::parse_jsonl("   "), None);
        assert_eq!(Event::parse_jsonl("not json"), None);
        assert_eq!(
            Event::parse_jsonl(r#"{"t":"mystery","sub":"a","name":"b"}"#),
            None
        );
    }
}
