//! The telemetry event vocabulary and its JSONL form.

use crate::json::{self, JsonValue};
use std::borrow::Cow;

/// One telemetry event. Every variant carries a `(subsystem, name)`
/// pair — e.g. `("engine", "chunk_ticks")` — that report tooling
/// groups by.
///
/// Names are `Cow<'static, str>` so the recorder's hot path (span
/// drops, per-sample points) borrows the `&'static str` literals at
/// call sites instead of allocating; only [`Event::parse_jsonl`]
/// produces owned strings.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A closed wall-clock span. `start_ns` is relative to the
    /// recorder's creation; both fields are machine-dependent and must
    /// never feed back into deterministic state.
    Span {
        /// Subsystem that opened the span.
        subsystem: Cow<'static, str>,
        /// Span name.
        name: Cow<'static, str>,
        /// Nanoseconds from recorder creation to span start.
        start_ns: u64,
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A counter snapshot (cumulative value at flush time).
    Count {
        /// Subsystem owning the counter.
        subsystem: Cow<'static, str>,
        /// Counter name.
        name: Cow<'static, str>,
        /// Cumulative value.
        value: u64,
    },
    /// A histogram snapshot: total observation count plus sparse
    /// `(bucket_index, count)` pairs (see [`crate::Histogram`] for the
    /// bucket-to-range mapping).
    Hist {
        /// Subsystem owning the histogram.
        subsystem: Cow<'static, str>,
        /// Histogram name.
        name: Cow<'static, str>,
        /// Total observations.
        count: u64,
        /// Non-empty `(bucket, count)` pairs, ascending by bucket.
        buckets: Vec<(u8, u64)>,
    },
    /// One time-series point: a simulation-time stamp plus named `f64`
    /// fields (e.g. the per-interval cluster goodput sample).
    Point {
        /// Subsystem emitting the series.
        subsystem: Cow<'static, str>,
        /// Series name.
        name: Cow<'static, str>,
        /// Simulation time of the point (seconds; *not* wall clock).
        time: f64,
        /// Named values, in emission order.
        fields: Vec<(Cow<'static, str>, f64)>,
    },
}

impl Event {
    /// The subsystem this event belongs to.
    pub fn subsystem(&self) -> &str {
        match self {
            Event::Span { subsystem, .. }
            | Event::Count { subsystem, .. }
            | Event::Hist { subsystem, .. }
            | Event::Point { subsystem, .. } => subsystem,
        }
    }

    /// The event name within its subsystem.
    pub fn name(&self) -> &str {
        match self {
            Event::Span { name, .. }
            | Event::Count { name, .. }
            | Event::Hist { name, .. }
            | Event::Point { name, .. } => name,
        }
    }

    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        let header = |out: &mut String, t: &str, sub: &str, name: &str| {
            out.push_str("{\"t\":\"");
            out.push_str(t);
            out.push_str("\",\"sub\":");
            json::write_str(out, sub);
            out.push_str(",\"name\":");
            json::write_str(out, name);
        };
        match self {
            Event::Span {
                subsystem,
                name,
                start_ns,
                dur_ns,
            } => {
                header(&mut out, "span", subsystem, name);
                out.push_str(&format!(",\"start_ns\":{start_ns},\"dur_ns\":{dur_ns}}}"));
            }
            Event::Count {
                subsystem,
                name,
                value,
            } => {
                header(&mut out, "count", subsystem, name);
                out.push_str(&format!(",\"value\":{value}}}"));
            }
            Event::Hist {
                subsystem,
                name,
                count,
                buckets,
            } => {
                header(&mut out, "hist", subsystem, name);
                out.push_str(&format!(",\"count\":{count},\"buckets\":["));
                for (i, (b, c)) in buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{b},{c}]"));
                }
                out.push_str("]}");
            }
            Event::Point {
                subsystem,
                name,
                time,
                fields,
            } => {
                header(&mut out, "point", subsystem, name);
                out.push_str(",\"time\":");
                json::write_f64(&mut out, *time);
                out.push_str(",\"fields\":{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::write_str(&mut out, k);
                    out.push(':');
                    json::write_f64(&mut out, *v);
                }
                out.push_str("}}");
            }
        }
        out
    }

    /// Parses one JSONL line produced by [`Self::to_jsonl`]. Returns
    /// `None` for blank lines, malformed JSON, or unknown event types
    /// (callers should skip those rather than abort a whole capture).
    pub fn parse_jsonl(line: &str) -> Option<Event> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let v = json::parse(line)?;
        let sub: Cow<'static, str> = Cow::Owned(v.get("sub")?.as_str()?.to_string());
        let name: Cow<'static, str> = Cow::Owned(v.get("name")?.as_str()?.to_string());
        match v.get("t")?.as_str()? {
            "span" => Some(Event::Span {
                subsystem: sub,
                name,
                start_ns: v.get("start_ns")?.as_u64()?,
                dur_ns: v.get("dur_ns")?.as_u64()?,
            }),
            "count" => Some(Event::Count {
                subsystem: sub,
                name,
                value: v.get("value")?.as_u64()?,
            }),
            "hist" => {
                let mut buckets = Vec::new();
                for pair in v.get("buckets")?.as_arr()? {
                    let pair = pair.as_arr()?;
                    if pair.len() != 2 {
                        return None;
                    }
                    buckets.push((pair[0].as_u64()?.min(255) as u8, pair[1].as_u64()?));
                }
                Some(Event::Hist {
                    subsystem: sub,
                    name,
                    count: v.get("count")?.as_u64()?,
                    buckets,
                })
            }
            "point" => {
                let fields = match v.get("fields")? {
                    JsonValue::Obj(pairs) => pairs
                        .iter()
                        .map(|(k, val)| Some((Cow::Owned(k.clone()), val.as_f64().unwrap_or(0.0))))
                        .collect::<Option<Vec<_>>>()?,
                    _ => return None,
                };
                Some(Event::Point {
                    subsystem: sub,
                    name,
                    time: v.get("time")?.as_f64().unwrap_or(0.0),
                    fields,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips() {
        let events = [
            Event::Span {
                subsystem: "engine".into(),
                name: "reschedule".into(),
                start_ns: 12,
                dur_ns: 34_000,
            },
            Event::Count {
                subsystem: "sched".into(),
                name: "fitness_evals".into(),
                // Integers round-trip exactly through the reader's f64
                // representation up to 2^53 — far above any real count.
                value: (1 << 53) - 1,
            },
            Event::Hist {
                subsystem: "engine".into(),
                name: "chunk_ticks".into(),
                count: 18,
                buckets: vec![(0, 1), (6, 17)],
            },
            Event::Point {
                subsystem: "engine".into(),
                name: "cluster_sample".into(),
                time: 3600.0,
                fields: vec![("goodput".into(), 120.5), ("used_gpus".into(), 14.0)],
            },
        ];
        for e in events {
            let line = e.to_jsonl();
            assert_eq!(Event::parse_jsonl(&line).as_ref(), Some(&e), "{line}");
        }
    }

    #[test]
    fn skips_blanks_and_garbage() {
        assert_eq!(Event::parse_jsonl(""), None);
        assert_eq!(Event::parse_jsonl("   "), None);
        assert_eq!(Event::parse_jsonl("not json"), None);
        assert_eq!(
            Event::parse_jsonl(r#"{"t":"mystery","sub":"a","name":"b"}"#),
            None
        );
    }
}
