//! Deterministic log-scale-bucket histograms.
//!
//! Bucket boundaries are powers of two, so assignment is a pure
//! function of the value (`leading_zeros`) with no floating-point
//! arithmetic anywhere — two captures of the same run bucket
//! identically on any machine.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: bucket 0 holds zeros, bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b)`, up to bucket 64 for `[2^63, u64::MAX]`.
pub const NUM_BUCKETS: usize = 65;

/// A lock-free log₂-bucket histogram over `u64` observations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The inclusive `[lo, hi]` value range of a bucket.
    pub fn bucket_bounds(bucket: usize) -> (u64, u64) {
        match bucket {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            b => (1 << (b - 1), (1 << b) - 1),
        }
    }

    /// Records one observation. Relaxed atomics: counts are exact
    /// under concurrent observers; only inter-bucket ordering is
    /// unspecified, which a snapshot taken after the workers join
    /// never observes.
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a sparse snapshot of the current counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (b, cell) in self.buckets.iter().enumerate() {
            let c = cell.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((b as u8, c));
                count += c;
            }
        }
        HistogramSnapshot { count, buckets }
    }
}

/// An immutable sparse histogram snapshot, as carried by
/// [`crate::Event::Hist`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Non-empty `(bucket, count)` pairs, ascending by bucket.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Rebuilds a snapshot from the sparse pairs of a parsed event.
    pub fn from_sparse(buckets: Vec<(u8, u64)>) -> Self {
        let count = buckets.iter().map(|&(_, c)| c).sum();
        Self { count, buckets }
    }

    /// Estimates the `p`-th percentile (0 ≤ p ≤ 100) by nearest-rank
    /// bucket walk, reporting the bucket's midpoint. The estimate is
    /// exact for bucket 0 (zeros) and within 2× elsewhere — the
    /// resolution log buckets buy.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=100.0).contains(&p) {
            return None;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(b, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                let (lo, hi) = Histogram::bucket_bounds(b as usize);
                return Some(lo as f64 + (hi - lo) as f64 / 2.0);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment_is_exact_at_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for b in 0..NUM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(b);
            assert_eq!(Histogram::bucket_of(lo), b, "lo of bucket {b}");
            assert_eq!(Histogram::bucket_of(hi), b, "hi of bucket {b}");
        }
    }

    #[test]
    fn snapshot_is_sparse_and_complete() {
        let h = Histogram::new();
        for v in [0, 0, 1, 5, 5, 5, 1024] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.buckets, vec![(0, 2), (1, 1), (3, 3), (11, 1)]);
        assert_eq!(HistogramSnapshot::from_sparse(s.buckets.clone()), s);
    }

    #[test]
    fn percentiles_walk_buckets() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(0);
        }
        for _ in 0..10 {
            h.observe(1000); // bucket 10: [512, 1023]
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(50.0), Some(0.0));
        let p99 = s.percentile(99.0).unwrap();
        assert!((512.0..=1023.0).contains(&p99), "p99 = {p99}");
        assert_eq!(s.percentile(0.0), Some(0.0));
        assert_eq!(HistogramSnapshot::default().percentile(50.0), None);
        assert_eq!(s.percentile(101.0), None);
    }
}
