//! A minimal JSON reader/writer for telemetry capture files.
//!
//! The workspace's vendored `serde` stub serializes through `Debug`
//! and cannot parse anything back, so JSONL capture files are written
//! and read by hand here. Only the subset the [`crate::Event`] schema
//! needs is supported: objects, arrays, strings (with `\"`, `\\`,
//! `\n`, `\t`, `\r`, `\uXXXX` escapes), numbers, booleans, and null.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always held as `f64`; the event schema's integers
    /// are far below 2^53, so the round trip is exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 1.8e19 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document. Returns `None` on any syntax error or
/// trailing garbage.
pub fn parse(input: &str) -> Option<JsonValue> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` to `out` in shortest round-trip form
/// (Rust's `Display`); non-finite values — which the recorder never
/// produces but a caller-supplied field might contain — degrade to
/// `null`, which reads back as 0.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `Display` for floats omits the ".0" on integral values,
        // which is still valid JSON.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        (self.bump()? == b).then_some(())
    }

    fn value(&mut self) -> Option<JsonValue> {
        self.skip_ws();
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(JsonValue::Str),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Option<JsonValue> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Some(v)
        } else {
            None
        }
    }

    fn object(&mut self) -> Option<JsonValue> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Some(JsonValue::Obj(fields)),
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Some(JsonValue::Arr(items)),
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = self.bytes.get(self.pos..self.pos + 4)?;
                        self.pos += 4;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        if (0xd800..0xdc00).contains(&code) {
                            // High surrogate: recombine with the low
                            // surrogate that must follow (standard
                            // JSON encodes astral-plane characters as
                            // \uD8xx\uDCxx pairs). A missing or
                            // malformed partner degrades to U+FFFD
                            // without consuming it.
                            let lo = self
                                .bytes
                                .get(self.pos..self.pos + 6)
                                .filter(|tail| tail.starts_with(b"\\u"))
                                .and_then(|tail| std::str::from_utf8(&tail[2..]).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .filter(|lo| (0xdc00..0xe000).contains(lo));
                            match lo {
                                Some(lo) => {
                                    self.pos += 6;
                                    let scalar = 0x10000 + ((code - 0xd800) << 10) + (lo - 0xdc00);
                                    out.push(char::from_u32(scalar).unwrap_or('\u{fffd}'));
                                }
                                None => out.push('\u{fffd}'),
                            }
                        } else {
                            // Lone low surrogates map to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                    }
                    _ => return None,
                },
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Re-decode a multi-byte UTF-8 sequence.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self.bytes.get(start..start + len)?;
                    self.pos = start + len;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                }
            }
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(JsonValue::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_event_schema_shapes() {
        let v = parse(r#"{"t":"point","time":-1.5,"fields":{"a":0.25,"b":3}}"#).unwrap();
        assert_eq!(v.get("t").unwrap().as_str(), Some("point"));
        assert_eq!(v.get("time").unwrap().as_f64(), Some(-1.5));
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("a").unwrap().as_f64(), Some(0.25));
        let v = parse(r#"{"buckets":[[3,17],[64,1]]}"#).unwrap();
        let arr = v.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_arr().unwrap()[0].as_u64(), Some(64));
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["plain", "with \"quotes\"", "tab\tnl\n", "uni → ☃", "\u{1}"] {
            let mut out = String::new();
            write_str(&mut out, s);
            let v = parse(&out).unwrap();
            assert_eq!(v.as_str(), Some(s), "escaping {s:?} as {out}");
        }
    }

    #[test]
    fn f64_round_trips_shortest() {
        for v in [0.0, -1.5, 0.1, 1e300, 123456789.0, f64::MIN_POSITIVE] {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert_eq!(parse(&out).unwrap().as_f64(), Some(v), "via {out}");
        }
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn surrogate_pairs_recombine() {
        // Serde-style writers escape astral-plane characters as
        // surrogate pairs; our reader must accept them.
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
        // Lone surrogates (either half) degrade to U+FFFD.
        assert_eq!(parse(r#""\ud83d""#).unwrap().as_str(), Some("\u{fffd}"));
        assert_eq!(parse(r#""\ude00x""#).unwrap().as_str(), Some("\u{fffd}x"));
        // A high surrogate followed by a non-surrogate escape keeps
        // the follower intact.
        assert_eq!(parse(r#""\ud83dA""#).unwrap().as_str(), Some("\u{fffd}A"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\":}", "1 2", "nul"] {
            assert!(parse(bad).is_none(), "{bad:?} must not parse");
        }
    }
}
