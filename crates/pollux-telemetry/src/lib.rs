//! Structured telemetry for the Pollux reproduction: RAII wall-clock
//! spans, exact atomic counters, deterministic log-bucket histograms,
//! and per-interval time-series points, draining into a pluggable
//! [`Sink`] (in-memory ring buffer, JSONL file, or nothing).
//!
//! # Determinism contract
//!
//! The simulation engine's golden-digest suite requires that attaching
//! a recorder *cannot* change a `SimResult` bit. Every API here is
//! therefore observational only:
//!
//! - recording never draws from any RNG and never reorders caller
//!   arithmetic — values are copied out, not computed;
//! - wall-clock readings (`Instant`) stay inside [`Event`]s and never
//!   flow back to the caller;
//! - a disabled recorder (the [`Default`]) skips all work, so code
//!   paths are identical whether telemetry is captured or not.
//!
//! # Compile-out
//!
//! With the `telemetry` cargo feature disabled (it is on by default),
//! [`Recorder`], [`SpanGuard`], [`Counter`], and [`HistogramHandle`]
//! become zero-sized no-ops: instrumented crates compile with no
//! telemetry code at all. [`Event`], the sinks, and the JSONL
//! reader/writer stay available in both modes so capture files can
//! always be parsed (e.g. by `telemetry_report`).
//!
//! # Example
//!
//! ```
//! use pollux_telemetry::{MemorySink, Recorder};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new(1024));
//! let rec = Recorder::new(sink.clone());
//!
//! {
//!     let _span = rec.span("engine", "reschedule");
//!     rec.incr("engine", "chunks", 1);
//!     rec.observe("engine", "chunk_ticks", 60);
//! } // span emitted here
//! rec.point("engine", "cluster_sample", 60.0, &[("goodput", 123.4)]);
//! rec.flush(); // counter + histogram snapshots
//!
//! # #[cfg(feature = "telemetry")]
//! assert!(sink.len() >= 4);
//! ```

pub mod chrome;
mod event;
mod histogram;
pub mod json;
mod recorder;
mod sink;

pub use event::{Event, JobExplain, RoundExplain};
pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use recorder::{Counter, HistogramHandle, Recorder, SpanGuard};
pub use sink::{JsonlSink, MemorySink, NullSink, Sink};

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "telemetry")]
    use std::sync::Arc;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let _span = rec.span("a", "b");
        rec.incr("a", "c", 5);
        rec.observe("a", "h", 7);
        rec.point("a", "p", 1.0, &[("x", 2.0)]);
        rec.flush();
        assert_eq!(rec.counter_value("a", "c"), 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn spans_counters_and_points_reach_the_sink() {
        let sink = Arc::new(MemorySink::new(64));
        let rec = Recorder::new(sink.clone());
        assert!(rec.is_enabled());
        {
            let _span = rec.span("engine", "chunk");
        }
        rec.incr("engine", "ticks", 3);
        rec.incr("engine", "ticks", 4);
        rec.observe("engine", "len", 16);
        rec.point("engine", "sample", 2.5, &[("goodput", 9.0), ("eff", 0.5)]);
        rec.flush();

        assert_eq!(rec.counter_value("engine", "ticks"), 7);
        let events = sink.drain();
        let mut spans = 0;
        let mut counts = 0;
        let mut hists = 0;
        let mut points = 0;
        for e in &events {
            match e {
                Event::Span { name, .. } => {
                    assert_eq!(name, "chunk");
                    spans += 1;
                }
                Event::Count { name, value, .. } => {
                    assert_eq!(name, "ticks");
                    assert_eq!(*value, 7);
                    counts += 1;
                }
                Event::Hist { count, .. } => {
                    assert_eq!(*count, 1);
                    hists += 1;
                }
                Event::Point { time, fields, .. } => {
                    assert_eq!(*time, 2.5);
                    assert_eq!(fields.len(), 2);
                    points += 1;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!((spans, counts, hists, points), (1, 1, 1, 1));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn cloned_recorders_share_counters() {
        let rec = Recorder::new(Arc::new(NullSink));
        let dup = rec.clone();
        rec.incr("x", "n", 1);
        dup.incr("x", "n", 2);
        assert_eq!(rec.counter_value("x", "n"), 3);
        assert_eq!(dup.counter_value("x", "n"), 3);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn hoisted_counter_handles_are_shared_and_exact() {
        let rec = Recorder::new(Arc::new(NullSink));
        let c1 = rec.counter("hot", "adds");
        let c2 = rec.counter("hot", "adds");
        for _ in 0..100 {
            c1.add(1);
            c2.add(2);
        }
        assert_eq!(rec.counter_value("hot", "adds"), 300);
        assert_eq!(c1.value(), 300);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn jsonl_events_round_trip() {
        let sink = Arc::new(MemorySink::new(64));
        let rec = Recorder::new(sink.clone());
        {
            let _s = rec.span("sub", "name");
        }
        rec.incr("sub", "c", 41);
        rec.observe("sub", "h", 1023);
        rec.point("sub", "p", -1.5, &[("a", 0.25)]);
        rec.flush();
        for e in sink.drain() {
            let line = e.to_jsonl();
            let back =
                Event::parse_jsonl(&line).unwrap_or_else(|| panic!("line must parse back: {line}"));
            assert_eq!(back, e, "round trip of {line}");
        }
    }
}
