//! The recorder: the single handle instrumented code holds.
//!
//! Two implementations share one API surface. With the `telemetry`
//! feature (the default) the real recorder routes events to a
//! [`Sink`]; without it every type here is an inert ZST, so the
//! instrumentation in the engine, scheduler, agent, and service
//! compiles away entirely. Call sites are identical in both modes.

use crate::sink::Sink;
use std::sync::Arc;

#[cfg(feature = "telemetry")]
mod enabled {
    use super::*;
    use crate::event::{Event, RoundExplain};
    use crate::histogram::Histogram;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    type Key = (&'static str, &'static str);

    #[derive(Debug)]
    struct Inner {
        sink: Arc<dyn Sink>,
        epoch: Instant,
        mirror: AtomicBool,
        // BTreeMaps so flush order (and therefore capture files) is
        // independent of registration order.
        counters: Mutex<BTreeMap<Key, Arc<AtomicU64>>>,
        histograms: Mutex<BTreeMap<Key, Arc<Histogram>>>,
    }

    impl Inner {
        fn emit(&self, event: Event) {
            if self.mirror.load(Ordering::Relaxed) {
                eprintln!("{}", event.to_jsonl());
            }
            self.sink.record(event);
        }
    }

    /// A cloneable telemetry handle. The [`Default`] is disabled: all
    /// methods early-out, so unconditionally instrumented code costs
    /// one branch when nobody is listening.
    #[derive(Clone, Default)]
    pub struct Recorder {
        inner: Option<Arc<Inner>>,
    }

    impl std::fmt::Debug for Recorder {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Deliberately opaque: a recorder may sit inside structs
            // whose Debug form is serialized by the vendored serde
            // stub, and wall-clock state must never leak there.
            f.debug_struct("Recorder")
                .field("enabled", &self.is_enabled())
                .finish()
        }
    }

    impl Recorder {
        /// A recorder that records nothing (same as [`Default`]).
        pub fn disabled() -> Self {
            Self::default()
        }

        /// Creates a recorder draining into `sink`.
        pub fn new(sink: Arc<dyn Sink>) -> Self {
            Self {
                inner: Some(Arc::new(Inner {
                    sink,
                    epoch: Instant::now(),
                    mirror: AtomicBool::new(false),
                    counters: Mutex::new(BTreeMap::new()),
                    histograms: Mutex::new(BTreeMap::new()),
                })),
            }
        }

        /// Whether events are being captured.
        pub fn is_enabled(&self) -> bool {
            self.inner.is_some()
        }

        /// Also prints every subsequent event to stderr as JSONL (the
        /// `POLLUX_SIM_DEBUG` behavior). No-op when disabled.
        pub fn enable_stderr_mirror(&self) {
            if let Some(inner) = &self.inner {
                inner.mirror.store(true, Ordering::Relaxed);
            }
        }

        /// Opens a wall-clock span; the event is emitted when the
        /// returned guard drops.
        pub fn span(&self, subsystem: &'static str, name: &'static str) -> SpanGuard {
            SpanGuard {
                active: self
                    .inner
                    .as_ref()
                    .map(|i| (Arc::clone(i), subsystem, name, Instant::now())),
            }
        }

        /// Emits a span for a duration measured by the caller (used
        /// where an `Instant` pair already exists).
        pub fn record_duration_ns(&self, subsystem: &'static str, name: &'static str, ns: u64) {
            if let Some(inner) = &self.inner {
                let end = inner.epoch.elapsed().as_nanos() as u64;
                inner.emit(Event::Span {
                    subsystem: subsystem.into(),
                    name: name.into(),
                    start_ns: end.saturating_sub(ns),
                    dur_ns: ns,
                });
            }
        }

        /// Adds to a named counter. For hot paths prefer hoisting a
        /// [`Counter`] handle via [`Self::counter`].
        pub fn incr(&self, subsystem: &'static str, name: &'static str, delta: u64) {
            self.counter(subsystem, name).add(delta);
        }

        /// A shared handle to a named counter: one atomic add per
        /// `add` call, no locking.
        pub fn counter(&self, subsystem: &'static str, name: &'static str) -> Counter {
            Counter {
                cell: self.inner.as_ref().map(|inner| {
                    Arc::clone(
                        inner
                            .counters
                            .lock()
                            .expect("counter registry")
                            .entry((subsystem, name))
                            .or_default(),
                    )
                }),
            }
        }

        /// The current value of a counter (0 when disabled or never
        /// touched). Primarily for tests and reports.
        pub fn counter_value(&self, subsystem: &'static str, name: &'static str) -> u64 {
            match &self.inner {
                Some(inner) => inner
                    .counters
                    .lock()
                    .expect("counter registry")
                    .get(&(subsystem, name))
                    .map(|c| c.load(Ordering::Relaxed))
                    .unwrap_or(0),
                None => 0,
            }
        }

        /// Records one observation into a named histogram.
        pub fn observe(&self, subsystem: &'static str, name: &'static str, value: u64) {
            self.histogram(subsystem, name).observe(value);
        }

        /// A shared handle to a named histogram.
        pub fn histogram(&self, subsystem: &'static str, name: &'static str) -> HistogramHandle {
            HistogramHandle {
                hist: self.inner.as_ref().map(|inner| {
                    Arc::clone(
                        inner
                            .histograms
                            .lock()
                            .expect("histogram registry")
                            .entry((subsystem, name))
                            .or_default(),
                    )
                }),
            }
        }

        /// Emits one time-series point.
        pub fn point(
            &self,
            subsystem: &'static str,
            name: &'static str,
            time: f64,
            fields: &[(&'static str, f64)],
        ) {
            if let Some(inner) = &self.inner {
                inner.emit(Event::Point {
                    subsystem: subsystem.into(),
                    name: name.into(),
                    time,
                    fields: fields.iter().map(|&(k, v)| (k.into(), v)).collect(),
                });
            }
        }

        /// Emits one string-valued metadata record (e.g.
        /// `("sched", "policy")` = `"tiresias"`). Report tooling keeps
        /// the latest value per `(subsystem, name)`.
        pub fn meta(&self, subsystem: &'static str, name: &'static str, value: &str) {
            if let Some(inner) = &self.inner {
                inner.emit(Event::Meta {
                    subsystem: subsystem.into(),
                    name: name.into(),
                    value: std::borrow::Cow::Owned(value.to_string()),
                });
            }
        }

        /// Emits one placement-timeline event (see
        /// [`Event::Timeline`]). The placement slices are cloned only
        /// when a sink is attached, so disabled recorders pay one
        /// branch.
        pub fn timeline(
            &self,
            subsystem: &'static str,
            kind: &'static str,
            time: f64,
            job: u64,
            old: &[u32],
            new: &[u32],
        ) {
            if let Some(inner) = &self.inner {
                inner.emit(Event::Timeline {
                    subsystem: subsystem.into(),
                    name: kind.into(),
                    time,
                    job,
                    old: old.to_vec(),
                    new: new.to_vec(),
                });
            }
        }

        /// Emits one scheduling-round audit record. Callers should
        /// build the [`RoundExplain`] only when [`Self::is_enabled`]
        /// to keep the disabled path free.
        pub fn round_explain(&self, explain: RoundExplain) {
            if let Some(inner) = &self.inner {
                inner.emit(Event::Round(explain));
            }
        }

        /// Emits cumulative snapshots of every counter and histogram,
        /// then flushes the sink. Call at the end of a run; repeated
        /// flushes re-emit the (monotone) cumulative values, and
        /// report tooling keeps the latest snapshot per name.
        pub fn flush(&self) {
            let Some(inner) = &self.inner else { return };
            for (&(sub, name), cell) in inner.counters.lock().expect("counter registry").iter() {
                inner.emit(Event::Count {
                    subsystem: sub.into(),
                    name: name.into(),
                    value: cell.load(Ordering::Relaxed),
                });
            }
            for (&(sub, name), hist) in inner.histograms.lock().expect("histogram registry").iter()
            {
                let snap = hist.snapshot();
                inner.emit(Event::Hist {
                    subsystem: sub.into(),
                    name: name.into(),
                    count: snap.count,
                    buckets: snap.buckets,
                });
            }
            inner.sink.flush();
        }
    }

    /// RAII span guard: emits a [`Event::Span`] on drop.
    #[must_use = "a span measures until the guard drops; bind it to a variable"]
    #[derive(Debug)]
    pub struct SpanGuard {
        active: Option<(Arc<Inner>, &'static str, &'static str, Instant)>,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if let Some((inner, subsystem, name, start)) = self.active.take() {
                let start_ns = start.duration_since(inner.epoch).as_nanos() as u64;
                let dur_ns = start.elapsed().as_nanos() as u64;
                inner.emit(Event::Span {
                    subsystem: subsystem.into(),
                    name: name.into(),
                    start_ns,
                    dur_ns,
                });
            }
        }
    }

    /// Hoisted counter handle: a bare `AtomicU64::fetch_add(Relaxed)`
    /// per call, exact under any number of concurrent writers.
    #[derive(Debug, Clone, Default)]
    pub struct Counter {
        cell: Option<Arc<AtomicU64>>,
    }

    impl Counter {
        /// A detached handle that records nothing until replaced by a
        /// live one from [`Recorder::counter`].
        pub fn detached() -> Self {
            Counter { cell: None }
        }

        /// Adds `delta` to the counter.
        #[inline]
        pub fn add(&self, delta: u64) {
            if let Some(cell) = &self.cell {
                cell.fetch_add(delta, Ordering::Relaxed);
            }
        }

        /// The current value (0 when disabled).
        pub fn value(&self) -> u64 {
            self.cell
                .as_ref()
                .map(|c| c.load(Ordering::Relaxed))
                .unwrap_or(0)
        }
    }

    /// Hoisted histogram handle.
    #[derive(Debug, Clone, Default)]
    pub struct HistogramHandle {
        hist: Option<Arc<Histogram>>,
    }

    impl HistogramHandle {
        /// Records one observation.
        #[inline]
        pub fn observe(&self, value: u64) {
            if let Some(hist) = &self.hist {
                hist.observe(value);
            }
        }
    }
}

#[cfg(not(feature = "telemetry"))]
mod disabled {
    use super::*;

    /// Compiled-out recorder: a ZST whose methods are all no-ops.
    /// Deliberately `Clone` but not `Copy`, mirroring the enabled
    /// recorder's trait surface so call sites lint identically in
    /// both modes.
    #[derive(Debug, Clone, Default)]
    pub struct Recorder;

    impl Recorder {
        /// A recorder that records nothing (same as [`Default`]).
        pub fn disabled() -> Self {
            Recorder
        }

        /// Accepts and drops the sink: telemetry is compiled out.
        pub fn new(_sink: Arc<dyn Sink>) -> Self {
            Recorder
        }

        /// Always `false` in this build.
        pub fn is_enabled(&self) -> bool {
            false
        }

        /// No-op.
        pub fn enable_stderr_mirror(&self) {}

        /// No-op guard.
        pub fn span(&self, _subsystem: &'static str, _name: &'static str) -> SpanGuard {
            SpanGuard
        }

        /// No-op.
        pub fn record_duration_ns(&self, _subsystem: &'static str, _name: &'static str, _ns: u64) {}

        /// No-op.
        pub fn incr(&self, _subsystem: &'static str, _name: &'static str, _delta: u64) {}

        /// No-op handle.
        pub fn counter(&self, _subsystem: &'static str, _name: &'static str) -> Counter {
            Counter
        }

        /// Always 0 in this build.
        pub fn counter_value(&self, _subsystem: &'static str, _name: &'static str) -> u64 {
            0
        }

        /// No-op.
        pub fn observe(&self, _subsystem: &'static str, _name: &'static str, _value: u64) {}

        /// No-op handle.
        pub fn histogram(&self, _subsystem: &'static str, _name: &'static str) -> HistogramHandle {
            HistogramHandle
        }

        /// No-op.
        pub fn point(
            &self,
            _subsystem: &'static str,
            _name: &'static str,
            _time: f64,
            _fields: &[(&'static str, f64)],
        ) {
        }

        /// No-op.
        pub fn meta(&self, _subsystem: &'static str, _name: &'static str, _value: &str) {}

        /// No-op.
        pub fn timeline(
            &self,
            _subsystem: &'static str,
            _kind: &'static str,
            _time: f64,
            _job: u64,
            _old: &[u32],
            _new: &[u32],
        ) {
        }

        /// Accepts and drops the record: telemetry is compiled out.
        pub fn round_explain(&self, _explain: crate::event::RoundExplain) {}

        /// No-op.
        pub fn flush(&self) {}
    }

    /// Compiled-out span guard.
    #[must_use = "a span measures until the guard drops; bind it to a variable"]
    #[derive(Debug)]
    pub struct SpanGuard;

    /// Compiled-out counter handle.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Counter;

    impl Counter {
        /// A detached handle (identical to every other handle in this
        /// build).
        pub fn detached() -> Self {
            Counter
        }

        /// No-op.
        #[inline]
        pub fn add(&self, _delta: u64) {}

        /// Always 0 in this build.
        pub fn value(&self) -> u64 {
            0
        }
    }

    /// Compiled-out histogram handle.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct HistogramHandle;

    impl HistogramHandle {
        /// No-op.
        #[inline]
        pub fn observe(&self, _value: u64) {}
    }
}

#[cfg(feature = "telemetry")]
pub use enabled::{Counter, HistogramHandle, Recorder, SpanGuard};

#[cfg(not(feature = "telemetry"))]
pub use disabled::{Counter, HistogramHandle, Recorder, SpanGuard};
