//! Event sinks: where a [`crate::Recorder`] drains its events.

use crate::event::Event;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A destination for telemetry events. Implementations must tolerate
/// concurrent `record` calls (recorders are cloned across threads).
/// Events arrive by value so sinks that retain them (e.g.
/// [`MemorySink`]) never clone on the hot path.
pub trait Sink: Send + Sync + std::fmt::Debug {
    /// Accepts one event.
    fn record(&self, event: Event);

    /// Flushes any buffering. The default is a no-op.
    fn flush(&self) {}
}

/// Discards everything. Useful when only the stderr mirror or the
/// recorder's live counters are wanted.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: Event) {}
}

/// A bounded in-memory ring buffer: keeps the most recent `capacity`
/// events, counting (rather than blocking on) overflow.
#[derive(Debug)]
pub struct MemorySink {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl MemorySink {
    /// Creates a ring buffer holding at most `capacity` events
    /// (`capacity` is clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.events.lock().expect("sink lock").drain(..).collect()
    }

    /// The number of currently buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink lock").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Sink for MemorySink {
    fn record(&self, event: Event) {
        let mut q = self.events.lock().expect("sink lock");
        if q.len() == self.capacity {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(event);
    }

    /// If any events were evicted, appends a
    /// `("telemetry", "dropped_events")` count so report tooling can
    /// warn that the capture is incomplete. Pushed directly into the
    /// queue — the drop marker itself never evicts (or counts as) a
    /// dropped event.
    fn flush(&self) {
        let dropped = self.dropped.load(Ordering::Relaxed);
        if dropped > 0 {
            self.events
                .lock()
                .expect("sink lock")
                .push_back(Event::Count {
                    subsystem: "telemetry".into(),
                    name: "dropped_events".into(),
                    value: dropped,
                });
        }
    }
}

/// Appends each event as one JSONL line to a file, buffered.
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the capture file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: Event) {
        let mut out = self.out.lock().expect("sink lock");
        // Capture files are best-effort: a full disk must not take the
        // simulation down with it.
        let _ = writeln!(out, "{}", event.to_jsonl());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("sink lock").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(v: u64) -> Event {
        Event::Count {
            subsystem: "t".into(),
            name: "n".into(),
            value: v,
        }
    }

    #[test]
    fn memory_sink_drops_oldest_on_overflow() {
        let sink = MemorySink::new(3);
        for v in 0..5 {
            sink.record(count(v));
        }
        assert_eq!(sink.dropped(), 2);
        let kept: Vec<u64> = sink
            .drain()
            .iter()
            .map(|e| match e {
                Event::Count { value, .. } => *value,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert!(sink.is_empty());
    }

    #[test]
    fn memory_sink_flush_surfaces_dropped_count() {
        let sink = MemorySink::new(2);
        for v in 0..5 {
            sink.record(count(v));
        }
        sink.flush();
        let events = sink.drain();
        assert_eq!(
            events.last(),
            Some(&Event::Count {
                subsystem: "telemetry".into(),
                name: "dropped_events".into(),
                value: 3,
            })
        );
        // No drops → no marker.
        let quiet = MemorySink::new(8);
        quiet.record(count(0));
        quiet.flush();
        assert_eq!(quiet.len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("pollux-telemetry-sink-test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(count(7));
        sink.record(count(8));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<Event> = text.lines().filter_map(Event::parse_jsonl).collect();
        assert_eq!(parsed, vec![count(7), count(8)]);
        let _ = std::fs::remove_file(&path);
    }
}
