//! Property tests: every [`Event`] survives a `to_jsonl` →
//! `parse_jsonl` round trip, including subsystem/name/field strings
//! full of quotes, backslashes, control characters, and non-ASCII
//! text (multi-byte UTF-8 and astral-plane characters).

use pollux_telemetry::{Event, JobExplain, RoundExplain};
use proptest::collection::vec;
use proptest::prelude::*;
use std::borrow::Cow;

/// Characters chosen to stress the hand-rolled JSON writer/reader:
/// the two escape-introducers, every named escape, raw control
/// characters, 2-, 3-, and 4-byte UTF-8 sequences, and plain ASCII.
const PALETTE: &[char] = &[
    'a',
    'Z',
    '0',
    ' ',
    '"',
    '\\',
    '/',
    '\n',
    '\t',
    '\r',
    '\u{8}',
    '\u{c}',
    '\u{1}',
    '\u{1f}',
    '\u{7f}',
    'é',
    'ß',
    '→',
    '☃',
    '子',
    '\u{fffd}',
    '😀',
    '🚀',
    '\u{10fffd}',
];

fn nasty_string() -> impl Strategy<Value = String> {
    vec(0usize..PALETTE.len(), 0..24).prop_map(|idx| idx.into_iter().map(|i| PALETTE[i]).collect())
}

fn round_trips(e: Event) {
    let line = e.to_jsonl();
    let back = Event::parse_jsonl(&line);
    assert_eq!(back.as_ref(), Some(&e), "through {line}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn span_round_trips(
        sub in nasty_string(),
        name in nasty_string(),
        start_ns in 0u64..(1 << 53),
        dur_ns in 0u64..(1 << 53),
    ) {
        round_trips(Event::Span {
            subsystem: Cow::Owned(sub),
            name: Cow::Owned(name),
            start_ns,
            dur_ns,
        });
    }

    #[test]
    fn count_round_trips(
        sub in nasty_string(),
        name in nasty_string(),
        value in 0u64..(1 << 53),
    ) {
        round_trips(Event::Count {
            subsystem: Cow::Owned(sub),
            name: Cow::Owned(name),
            value,
        });
    }

    #[test]
    fn hist_round_trips(
        sub in nasty_string(),
        name in nasty_string(),
        count in 0u64..(1 << 53),
        buckets in vec((0u8..64, 0u64..(1 << 40)), 0..8),
    ) {
        round_trips(Event::Hist {
            subsystem: Cow::Owned(sub),
            name: Cow::Owned(name),
            count,
            buckets,
        });
    }

    #[test]
    fn point_round_trips(
        sub in nasty_string(),
        name in nasty_string(),
        time in -1e9f64..1e9,
        fields in vec((nasty_string(), -1e12f64..1e12), 0..5),
    ) {
        round_trips(Event::Point {
            subsystem: Cow::Owned(sub),
            name: Cow::Owned(name),
            time,
            fields: fields
                .into_iter()
                .map(|(k, v)| (Cow::Owned(k), v))
                .collect(),
        });
    }

    #[test]
    fn timeline_round_trips(
        sub in nasty_string(),
        kind in nasty_string(),
        time in 0f64..1e9,
        job in 0u64..(1 << 53),
        old in vec(0u32..64, 0..12),
        new in vec(0u32..64, 0..12),
    ) {
        round_trips(Event::Timeline {
            subsystem: Cow::Owned(sub),
            name: Cow::Owned(kind),
            time,
            job,
            old,
            new,
        });
    }

    #[test]
    fn round_explain_round_trips(
        time in 0f64..1e9,
        fitness in -10f64..10.0,
        fitness_before in -10f64..10.0,
        racked in 0u8..2,
        jobs in vec(
            (
                (0u64..(1 << 53), 0f64..100.0, 0f64..16.0, 0f64..16.0),
                (0f64..1.0, -1i64..64, -1i64..64, 0u32..1024, 0u32..1024),
                vec(0u64..(1 << 53), 0..6),
            ),
            0..5,
        ),
    ) {
        round_trips(Event::Round(RoundExplain {
            time,
            fitness,
            fitness_before,
            racked: racked == 1,
            jobs: jobs
                .into_iter()
                .map(|((job, weight, su_b, su_a), (pen, rb, ra, gb, ga), co)| JobExplain {
                    job,
                    weight,
                    speedup_before: su_b,
                    speedup_after: su_a,
                    restart_penalty: pen,
                    rack_before: rb,
                    rack_after: ra,
                    gpus_before: gb,
                    gpus_after: ga,
                    co_residents: co,
                })
                .collect(),
        }));
    }
}
