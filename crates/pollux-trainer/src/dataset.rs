//! Synthetic supervised datasets with deterministic generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// A dense supervised dataset: `n` examples of dimension `dim` with
/// scalar targets.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dim: usize,
    /// Row-major `n × dim` feature matrix.
    features: Vec<f64>,
    targets: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset from raw rows. Returns `None` on shape
    /// mismatch or zero dimension.
    pub fn new(dim: usize, features: Vec<f64>, targets: Vec<f64>) -> Option<Self> {
        if dim == 0 || targets.is_empty() || features.len() != targets.len() * dim {
            None
        } else {
            Some(Self {
                dim,
                features,
                targets,
            })
        }
    }

    /// Synthetic linear-regression data: `y = x·w* + ε`,
    /// `x ~ N(0, I)`, `ε ~ N(0, noise_std²)`.
    ///
    /// Returns the dataset and the true weights `w*`.
    pub fn linear_regression(
        n: usize,
        dim: usize,
        noise_std: f64,
        seed: u64,
    ) -> Option<(Self, Vec<f64>)> {
        if n == 0 || dim == 0 || noise_std < 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let w_star: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let noise = Normal::new(0.0, noise_std.max(1e-12)).ok()?;
        let normal = Normal::new(0.0, 1.0).ok()?;
        let mut features = Vec::with_capacity(n * dim);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let mut dot = 0.0;
            for w in w_star.iter().take(dim) {
                let x: f64 = normal.sample(&mut rng);
                features.push(x);
                dot += x * w;
            }
            let eps = if noise_std > 0.0 {
                noise.sample(&mut rng)
            } else {
                0.0
            };
            targets.push(dot + eps);
        }
        Some((
            Self {
                dim,
                features,
                targets,
            },
            w_star,
        ))
    }

    /// Synthetic binary classification: two Gaussian blobs centered at
    /// `±center` along every coordinate, labels in {0, 1}.
    pub fn two_gaussians(n: usize, dim: usize, center: f64, seed: u64) -> Option<Self> {
        if n == 0 || dim == 0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let normal = Normal::new(0.0, 1.0).ok()?;
        let mut features = Vec::with_capacity(n * dim);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let label = rng.gen_bool(0.5);
            let mu = if label { center } else { -center };
            for _ in 0..dim {
                features.push(mu + normal.sample(&mut rng));
            }
            targets.push(if label { 1.0 } else { 0.0 });
        }
        Some(Self {
            dim,
            features,
            targets,
        })
    }

    /// Synthetic multiclass classification: `classes` Gaussian blobs
    /// whose centers are spaced on a circle of radius `spread` in the
    /// first two feature dimensions; labels are class indices `0..classes`
    /// stored as `f64`.
    pub fn gaussian_blobs(
        n: usize,
        dim: usize,
        classes: usize,
        spread: f64,
        seed: u64,
    ) -> Option<Self> {
        if n == 0 || dim < 2 || classes < 2 || spread <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let normal = Normal::new(0.0, 1.0).ok()?;
        let mut features = Vec::with_capacity(n * dim);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let label = rng.gen_range(0..classes);
            let angle = 2.0 * std::f64::consts::PI * label as f64 / classes as f64;
            let (cx, cy) = (spread * angle.cos(), spread * angle.sin());
            for j in 0..dim {
                let center = match j {
                    0 => cx,
                    1 => cy,
                    _ => 0.0,
                };
                features.push(center + normal.sample(&mut rng));
            }
            targets.push(label as f64);
        }
        Some(Self {
            dim,
            features,
            targets,
        })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The feature row of example `i`.
    pub fn x(&self, i: usize) -> &[f64] {
        &self.features[i * self.dim..(i + 1) * self.dim]
    }

    /// The target of example `i`.
    pub fn y(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// Samples `count` example indices with replacement.
    pub fn sample_indices<R: Rng>(&self, count: usize, rng: &mut R) -> Vec<usize> {
        (0..count).map(|_| rng.gen_range(0..self.len())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Dataset::new(2, vec![1.0, 2.0], vec![1.0]).is_some());
        assert!(Dataset::new(2, vec![1.0], vec![1.0]).is_none());
        assert!(Dataset::new(0, vec![], vec![]).is_none());
        assert!(Dataset::new(2, vec![], vec![]).is_none());
    }

    #[test]
    fn linear_regression_shapes_and_determinism() {
        let (d1, w1) = Dataset::linear_regression(100, 5, 0.1, 42).unwrap();
        let (d2, w2) = Dataset::linear_regression(100, 5, 0.1, 42).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(w1, w2);
        assert_eq!(d1.len(), 100);
        assert_eq!(d1.dim(), 5);
        assert_eq!(d1.x(7).len(), 5);
        let (d3, _) = Dataset::linear_regression(100, 5, 0.1, 43).unwrap();
        assert_ne!(d1, d3);
    }

    #[test]
    fn linear_regression_targets_follow_weights() {
        let (d, w) = Dataset::linear_regression(2000, 4, 0.0, 1).unwrap();
        // Noiseless: y = x·w exactly.
        for i in 0..d.len() {
            let dot: f64 = d.x(i).iter().zip(&w).map(|(a, b)| a * b).sum();
            assert!((d.y(i) - dot).abs() < 1e-12);
        }
    }

    #[test]
    fn two_gaussians_separable_means() {
        let d = Dataset::two_gaussians(4000, 3, 2.0, 7).unwrap();
        let mut pos_mean = 0.0;
        let mut neg_mean = 0.0;
        let mut pos_n = 0.0;
        let mut neg_n = 0.0;
        for i in 0..d.len() {
            let m: f64 = d.x(i).iter().sum::<f64>() / 3.0;
            if d.y(i) > 0.5 {
                pos_mean += m;
                pos_n += 1.0;
            } else {
                neg_mean += m;
                neg_n += 1.0;
            }
        }
        pos_mean /= pos_n;
        neg_mean /= neg_n;
        assert!(pos_mean > 1.5, "positive blob mean {pos_mean}");
        assert!(neg_mean < -1.5, "negative blob mean {neg_mean}");
        // Roughly balanced labels.
        assert!((pos_n / d.len() as f64 - 0.5).abs() < 0.1);
    }

    #[test]
    fn sampling_is_in_range() {
        let (d, _) = Dataset::linear_regression(50, 2, 0.1, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let idx = d.sample_indices(200, &mut rng);
        assert_eq!(idx.len(), 200);
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn degenerate_generators_rejected() {
        assert!(Dataset::linear_regression(0, 2, 0.1, 0).is_none());
        assert!(Dataset::linear_regression(10, 0, 0.1, 0).is_none());
        assert!(Dataset::linear_regression(10, 2, -1.0, 0).is_none());
        assert!(Dataset::two_gaussians(0, 2, 1.0, 0).is_none());
        assert!(Dataset::two_gaussians(10, 0, 1.0, 0).is_none());
    }
}
