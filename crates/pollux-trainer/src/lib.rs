//! A pure-Rust data-parallel SGD training substrate.
//!
//! The original Pollux integrates with PyTorch; this workspace has no
//! DL-framework dependency, so this crate provides the closest
//! equivalent that exercises the same code paths with **real
//! stochastic gradients**:
//!
//! - synthetic supervised tasks ([`dataset`]): linear regression,
//!   two-Gaussian logistic classification;
//! - differentiable models ([`model`]): linear, logistic, and a small
//!   tanh MLP, with analytically computed per-batch gradients;
//! - a data-parallel SGD loop ([`train`]) that splits each mini-batch
//!   across `K` simulated replicas, measures the gradient noise scale
//!   from the inter-replica spread (`pollux-agent`'s estimators), and
//!   scales the learning rate with AdaScale (Eqn 5).
//!
//! This substrate validates the paper's statistical claims end-to-end:
//! Eqn 7's efficiency prediction matches the measured extra examples a
//! large-batch run needs to reach the same loss (the Fig 2b check).

pub mod dataset;
pub mod loader;
pub mod model;
pub mod train;

pub use dataset::Dataset;
pub use loader::EpochLoader;
pub use model::{GradModel, LinearModel, LogisticModel, MlpModel, SoftmaxModel};
pub use train::{AdaptiveTrainer, StepStats, TrainerConfig};
