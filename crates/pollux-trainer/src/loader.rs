//! Epoch-based mini-batch loading (shuffled, without replacement).
//!
//! The [`crate::train::AdaptiveTrainer`] samples batches *with*
//! replacement, which is statistically convenient for noise-scale
//! estimation; real training loops iterate shuffled epochs. This
//! loader provides that behavior for users building their own loops.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Shuffled epoch iterator over dataset indices.
#[derive(Debug, Clone)]
pub struct EpochLoader {
    len: usize,
    batch_size: usize,
    order: Vec<usize>,
    cursor: usize,
    epoch: u64,
    rng: StdRng,
    drop_last: bool,
}

impl EpochLoader {
    /// Creates a loader over `data` with the given batch size.
    ///
    /// `drop_last` discards the final short batch of each epoch (so
    /// every batch has exactly `batch_size` examples). Returns `None`
    /// when `batch_size` is 0 or exceeds the dataset size with
    /// `drop_last` set.
    pub fn new(data: &Dataset, batch_size: usize, drop_last: bool, seed: u64) -> Option<Self> {
        if batch_size == 0 || (drop_last && batch_size > data.len()) {
            return None;
        }
        let mut loader = Self {
            len: data.len(),
            batch_size,
            order: (0..data.len()).collect(),
            cursor: 0,
            epoch: 0,
            rng: StdRng::seed_from_u64(seed),
            drop_last,
        };
        loader.reshuffle();
        Some(loader)
    }

    fn reshuffle(&mut self) {
        self.order.shuffle(&mut self.rng);
        self.cursor = 0;
    }

    /// Completed epochs (increments when a shuffle wraps around).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The next mini-batch of indices. Never returns an empty batch;
    /// wraps to a freshly shuffled epoch when exhausted.
    pub fn next_batch(&mut self) -> &[usize] {
        let remaining = self.len - self.cursor;
        let need = if self.drop_last { self.batch_size } else { 1 };
        if remaining < need {
            self.epoch += 1;
            self.reshuffle();
        }
        let take = self.batch_size.min(self.len - self.cursor);
        let batch = &self.order[self.cursor..self.cursor + take];
        self.cursor += take;
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Dataset {
        Dataset::linear_regression(n, 2, 0.1, 5).unwrap().0
    }

    #[test]
    fn construction_validation() {
        let d = data(10);
        assert!(EpochLoader::new(&d, 0, false, 0).is_none());
        assert!(EpochLoader::new(&d, 11, true, 0).is_none());
        assert!(EpochLoader::new(&d, 11, false, 0).is_some());
        assert!(EpochLoader::new(&d, 4, true, 0).is_some());
    }

    #[test]
    fn epoch_covers_every_index_exactly_once() {
        let d = data(100);
        let mut l = EpochLoader::new(&d, 7, false, 1).unwrap();
        let mut seen = vec![0usize; 100];
        // Collect one full epoch: 100 / 7 → 14 full + 1 short batch.
        let mut count = 0;
        while count < 100 {
            let batch: Vec<usize> = l.next_batch().to_vec();
            assert_eq!(l.epoch(), 0, "wrapped before covering the epoch");
            for i in batch {
                seen[i] += 1;
                count += 1;
            }
        }
        assert_eq!(count, 100);
        assert!(seen.iter().all(|&c| c == 1), "some index repeated/missing");
    }

    #[test]
    fn drop_last_keeps_batches_full() {
        let d = data(100);
        let mut l = EpochLoader::new(&d, 7, true, 2).unwrap();
        for _ in 0..50 {
            assert_eq!(l.next_batch().len(), 7);
        }
        // 14 full batches per epoch (98 examples), so 50 batches span
        // several epochs.
        assert!(l.epoch() >= 2);
    }

    #[test]
    fn epochs_reshuffle() {
        let d = data(50);
        let mut l = EpochLoader::new(&d, 50, false, 3).unwrap();
        let first: Vec<usize> = l.next_batch().to_vec();
        let second: Vec<usize> = l.next_batch().to_vec();
        assert_ne!(first, second, "consecutive epochs should differ");
        // But both are permutations of 0..50.
        let mut a = first.clone();
        let mut b = second.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, (0..50).collect::<Vec<_>>());
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = data(30);
        let mut l1 = EpochLoader::new(&d, 8, false, 9).unwrap();
        let mut l2 = EpochLoader::new(&d, 8, false, 9).unwrap();
        for _ in 0..10 {
            assert_eq!(l1.next_batch(), l2.next_batch());
        }
    }
}
