//! Differentiable models with analytic gradients.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A model trainable by mini-batch SGD.
pub trait GradModel {
    /// Number of trainable parameters.
    fn num_params(&self) -> usize;

    /// Read access to the flat parameter vector.
    fn params(&self) -> &[f64];

    /// Applies `w ← w − η · g`.
    fn sgd_step(&mut self, grad: &[f64], lr: f64);

    /// Mean gradient over the given examples, written into `out`
    /// (length `num_params`, zeroed by the callee).
    fn grad_mean(&self, data: &Dataset, indices: &[usize], out: &mut [f64]);

    /// Mean loss over the given examples.
    fn mean_loss(&self, data: &Dataset, indices: &[usize]) -> f64;

    /// Mean loss over the full dataset.
    fn full_loss(&self, data: &Dataset) -> f64 {
        let all: Vec<usize> = (0..data.len()).collect();
        self.mean_loss(data, &all)
    }
}

/// Linear regression with squared loss `½(x·w − y)²`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    w: Vec<f64>,
}

impl LinearModel {
    /// Zero-initialized linear model of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self { w: vec![0.0; dim] }
    }

    /// The prediction `x·w`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        x.iter().zip(&self.w).map(|(a, b)| a * b).sum()
    }
}

impl GradModel for LinearModel {
    fn num_params(&self) -> usize {
        self.w.len()
    }

    fn params(&self) -> &[f64] {
        &self.w
    }

    fn sgd_step(&mut self, grad: &[f64], lr: f64) {
        for (w, g) in self.w.iter_mut().zip(grad) {
            *w -= lr * g;
        }
    }

    fn grad_mean(&self, data: &Dataset, indices: &[usize], out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        let scale = 1.0 / indices.len().max(1) as f64;
        for &i in indices {
            let x = data.x(i);
            let err = self.predict(x) - data.y(i);
            for (o, xi) in out.iter_mut().zip(x) {
                *o += scale * err * xi;
            }
        }
    }

    fn mean_loss(&self, data: &Dataset, indices: &[usize]) -> f64 {
        let mut acc = 0.0;
        for &i in indices {
            let err = self.predict(data.x(i)) - data.y(i);
            acc += 0.5 * err * err;
        }
        acc / indices.len().max(1) as f64
    }
}

/// Logistic regression with binary cross-entropy loss.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    w: Vec<f64>,
    bias: f64,
}

impl LogisticModel {
    /// Zero-initialized logistic model of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            w: vec![0.0; dim + 1],
            bias: 0.0,
        }
    }

    /// The predicted probability `σ(x·w + b)`.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let z: f64 = x
            .iter()
            .zip(&self.w[..x.len()])
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + self.w[x.len()];
        sigmoid(z)
    }

    /// Classification accuracy over a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let mut hits = 0usize;
        for i in 0..data.len() {
            let p = self.predict_proba(data.x(i));
            let pred = if p >= 0.5 { 1.0 } else { 0.0 };
            if (pred - data.y(i)).abs() < 0.5 {
                hits += 1;
            }
        }
        hits as f64 / data.len() as f64
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl GradModel for LogisticModel {
    fn num_params(&self) -> usize {
        self.w.len()
    }

    fn params(&self) -> &[f64] {
        &self.w
    }

    fn sgd_step(&mut self, grad: &[f64], lr: f64) {
        for (w, g) in self.w.iter_mut().zip(grad) {
            *w -= lr * g;
        }
    }

    fn grad_mean(&self, data: &Dataset, indices: &[usize], out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        let dim = data.dim();
        let scale = 1.0 / indices.len().max(1) as f64;
        for &i in indices {
            let x = data.x(i);
            let err = self.predict_proba(x) - data.y(i);
            for j in 0..dim {
                out[j] += scale * err * x[j];
            }
            out[dim] += scale * err; // Bias term.
        }
    }

    fn mean_loss(&self, data: &Dataset, indices: &[usize]) -> f64 {
        let mut acc = 0.0;
        for &i in indices {
            let p = self.predict_proba(data.x(i)).clamp(1e-12, 1.0 - 1e-12);
            let y = data.y(i);
            acc -= y * p.ln() + (1.0 - y) * (1.0 - p).ln();
        }
        acc / indices.len().max(1) as f64
    }
}

/// A one-hidden-layer tanh MLP with squared loss (regression).
///
/// Parameters are packed as `[W1 (h×d), b1 (h), W2 (h), b2 (1)]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpModel {
    dim: usize,
    hidden: usize,
    theta: Vec<f64>,
}

impl MlpModel {
    /// Randomly initialized MLP (`N(0, 1/√d)` weights), deterministic
    /// per seed. Returns `None` for zero sizes.
    pub fn new(dim: usize, hidden: usize, seed: u64) -> Option<Self> {
        if dim == 0 || hidden == 0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let n = hidden * dim + hidden + hidden + 1;
        let scale = 1.0 / (dim as f64).sqrt();
        let theta: Vec<f64> = (0..n).map(|_| rng.gen_range(-scale..scale)).collect();
        Some(Self { dim, hidden, theta })
    }

    /// Forward pass returning (hidden activations, output).
    fn forward(&self, x: &[f64]) -> (Vec<f64>, f64) {
        let (d, h) = (self.dim, self.hidden);
        let w1 = &self.theta[..h * d];
        let b1 = &self.theta[h * d..h * d + h];
        let w2 = &self.theta[h * d + h..h * d + h + h];
        let b2 = self.theta[h * d + h + h];
        let mut act = Vec::with_capacity(h);
        let mut out = b2;
        for k in 0..h {
            let z: f64 = x
                .iter()
                .zip(&w1[k * d..(k + 1) * d])
                .map(|(a, b)| a * b)
                .sum::<f64>()
                + b1[k];
            let a = z.tanh();
            out += w2[k] * a;
            act.push(a);
        }
        (act, out)
    }

    /// The model's prediction for a feature row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.forward(x).1
    }
}

impl GradModel for MlpModel {
    fn num_params(&self) -> usize {
        self.theta.len()
    }

    fn params(&self) -> &[f64] {
        &self.theta
    }

    fn sgd_step(&mut self, grad: &[f64], lr: f64) {
        for (w, g) in self.theta.iter_mut().zip(grad) {
            *w -= lr * g;
        }
    }

    fn grad_mean(&self, data: &Dataset, indices: &[usize], out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        let (d, h) = (self.dim, self.hidden);
        let w2_off = h * d + h;
        let scale = 1.0 / indices.len().max(1) as f64;
        for &i in indices {
            let x = data.x(i);
            let (act, pred) = self.forward(x);
            let err = (pred - data.y(i)) * scale;
            // Output layer.
            for k in 0..h {
                out[w2_off + k] += err * act[k];
            }
            out[w2_off + h] += err; // b2.
                                    // Hidden layer through tanh'(z) = 1 − a².
            let w2 = &self.theta[w2_off..w2_off + h];
            for k in 0..h {
                let delta = err * w2[k] * (1.0 - act[k] * act[k]);
                for j in 0..d {
                    out[k * d + j] += delta * x[j];
                }
                out[h * d + k] += delta; // b1[k].
            }
        }
    }

    fn mean_loss(&self, data: &Dataset, indices: &[usize]) -> f64 {
        let mut acc = 0.0;
        for &i in indices {
            let err = self.predict(data.x(i)) - data.y(i);
            acc += 0.5 * err * err;
        }
        acc / indices.len().max(1) as f64
    }
}

/// Multiclass softmax (multinomial logistic) regression with
/// cross-entropy loss. Targets are class indices stored as `f64`.
///
/// Parameters are packed row-major: `[W (classes x dim), b (classes)]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxModel {
    dim: usize,
    classes: usize,
    theta: Vec<f64>,
}

impl SoftmaxModel {
    /// Zero-initialized softmax classifier. Returns `None` for fewer
    /// than two classes or zero dimension.
    pub fn new(dim: usize, classes: usize) -> Option<Self> {
        if dim == 0 || classes < 2 {
            return None;
        }
        Some(Self {
            dim,
            classes,
            theta: vec![0.0; classes * dim + classes],
        })
    }

    /// Class probabilities for a feature row.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let (d, c) = (self.dim, self.classes);
        let mut logits = Vec::with_capacity(c);
        for k in 0..c {
            let z: f64 = x
                .iter()
                .zip(&self.theta[k * d..(k + 1) * d])
                .map(|(a, b)| a * b)
                .sum::<f64>()
                + self.theta[c * d + k];
            logits.push(z);
        }
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut probs: Vec<f64> = logits.iter().map(|z| (z - max).exp()).collect();
        let sum: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= sum;
        }
        probs
    }

    /// The most likely class for a feature row.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.predict_proba(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    /// Classification accuracy over a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let mut hits = 0usize;
        for i in 0..data.len() {
            if self.predict(data.x(i)) == data.y(i) as usize {
                hits += 1;
            }
        }
        hits as f64 / data.len() as f64
    }
}

impl GradModel for SoftmaxModel {
    fn num_params(&self) -> usize {
        self.theta.len()
    }

    fn params(&self) -> &[f64] {
        &self.theta
    }

    fn sgd_step(&mut self, grad: &[f64], lr: f64) {
        for (w, g) in self.theta.iter_mut().zip(grad) {
            *w -= lr * g;
        }
    }

    fn grad_mean(&self, data: &Dataset, indices: &[usize], out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        let (d, c) = (self.dim, self.classes);
        let scale = 1.0 / indices.len().max(1) as f64;
        for &i in indices {
            let x = data.x(i);
            let y = data.y(i) as usize;
            let probs = self.predict_proba(x);
            for (k, &p) in probs.iter().enumerate() {
                let err = (p - if k == y { 1.0 } else { 0.0 }) * scale;
                for j in 0..d {
                    out[k * d + j] += err * x[j];
                }
                out[c * d + k] += err;
            }
        }
    }

    fn mean_loss(&self, data: &Dataset, indices: &[usize]) -> f64 {
        let mut acc = 0.0;
        for &i in indices {
            let y = data.y(i) as usize;
            let p = self.predict_proba(data.x(i))[y].clamp(1e-12, 1.0);
            acc -= p.ln();
        }
        acc / indices.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference gradient check for any model.
    fn check_gradients<M>(model: &M, data: &Dataset, tol: f64)
    where
        M: GradModel + Clone + std::fmt::Debug,
    {
        let indices: Vec<usize> = (0..data.len().min(16)).collect();
        let mut analytic = vec![0.0; model.num_params()];
        model.grad_mean(data, &indices, &mut analytic);

        let eps = 1e-6;
        for p in 0..model.num_params() {
            let mut plus = model.clone();
            let mut delta = vec![0.0; model.num_params()];
            delta[p] = -1.0; // sgd_step subtracts lr*grad; use lr=eps.
            plus.sgd_step(&delta, eps);
            let mut minus = model.clone();
            delta[p] = 1.0;
            minus.sgd_step(&delta, eps);
            let numeric =
                (plus.mean_loss(data, &indices) - minus.mean_loss(data, &indices)) / (2.0 * eps);
            assert!(
                (numeric - analytic[p]).abs() < tol * analytic[p].abs().max(1.0),
                "param {p}: numeric {numeric} vs analytic {}",
                analytic[p]
            );
        }
    }

    #[test]
    fn linear_gradcheck() {
        let (data, _) = Dataset::linear_regression(64, 4, 0.3, 11).unwrap();
        let mut m = LinearModel::new(4);
        // Move off the zero point.
        m.sgd_step(&[0.3, -0.2, 0.5, 0.1], 1.0);
        check_gradients(&m, &data, 1e-4);
    }

    #[test]
    fn logistic_gradcheck() {
        let data = Dataset::two_gaussians(64, 3, 1.0, 12).unwrap();
        let mut m = LogisticModel::new(3);
        m.sgd_step(&[0.2, -0.4, 0.1, 0.05], 1.0);
        check_gradients(&m, &data, 1e-4);
    }

    #[test]
    fn mlp_gradcheck() {
        let (data, _) = Dataset::linear_regression(32, 3, 0.1, 13).unwrap();
        let m = MlpModel::new(3, 4, 5).unwrap();
        check_gradients(&m, &data, 1e-3);
    }

    #[test]
    fn linear_sgd_converges_to_truth() {
        let (data, w_star) = Dataset::linear_regression(2000, 5, 0.05, 14).unwrap();
        let mut m = LinearModel::new(5);
        let mut rng = StdRng::seed_from_u64(0);
        let mut grad = vec![0.0; 5];
        for _ in 0..2000 {
            let idx = data.sample_indices(32, &mut rng);
            m.grad_mean(&data, &idx, &mut grad);
            m.sgd_step(&grad, 0.05);
        }
        for (w, t) in m.params().iter().zip(&w_star) {
            assert!((w - t).abs() < 0.05, "{:?} vs {:?}", m.params(), w_star);
        }
    }

    #[test]
    fn logistic_learns_separable_blobs() {
        let data = Dataset::two_gaussians(2000, 4, 2.0, 15).unwrap();
        let mut m = LogisticModel::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let mut grad = vec![0.0; m.num_params()];
        for _ in 0..1500 {
            let idx = data.sample_indices(32, &mut rng);
            m.grad_mean(&data, &idx, &mut grad);
            m.sgd_step(&grad, 0.5);
        }
        let acc = m.accuracy(&data);
        assert!(acc > 0.97, "accuracy = {acc}");
    }

    #[test]
    fn mlp_fits_nonlinear_target_better_than_linear() {
        // Target y = tanh(x0) + noise: the MLP must beat linear.
        let (mut raw, _) = Dataset::linear_regression(1500, 2, 0.0, 16).unwrap();
        // Rebuild targets as a nonlinear function of the features.
        let features: Vec<f64> = (0..raw.len()).flat_map(|i| raw.x(i).to_vec()).collect();
        let targets: Vec<f64> = (0..raw.len())
            .map(|i| (2.0 * raw.x(i)[0]).tanh() + 0.3 * raw.x(i)[1] * raw.x(i)[1])
            .collect();
        raw = Dataset::new(2, features, targets).unwrap();

        let mut rng = StdRng::seed_from_u64(1);
        let mut lin = LinearModel::new(2);
        let mut grad = vec![0.0; lin.num_params()];
        for _ in 0..3000 {
            let idx = raw.sample_indices(32, &mut rng);
            lin.grad_mean(&raw, &idx, &mut grad);
            lin.sgd_step(&grad, 0.05);
        }

        let mut mlp = MlpModel::new(2, 16, 2).unwrap();
        let mut grad = vec![0.0; mlp.num_params()];
        for _ in 0..6000 {
            let idx = raw.sample_indices(32, &mut rng);
            mlp.grad_mean(&raw, &idx, &mut grad);
            mlp.sgd_step(&grad, 0.05);
        }

        let lin_loss = lin.full_loss(&raw);
        let mlp_loss = mlp.full_loss(&raw);
        assert!(
            mlp_loss < 0.5 * lin_loss,
            "mlp {mlp_loss} should beat linear {lin_loss}"
        );
    }

    #[test]
    fn mlp_validation() {
        assert!(MlpModel::new(0, 4, 0).is_none());
        assert!(MlpModel::new(4, 0, 0).is_none());
        let m = MlpModel::new(3, 4, 0).unwrap();
        assert_eq!(m.num_params(), 3 * 4 + 4 + 4 + 1);
        // Deterministic init per seed.
        assert_eq!(
            MlpModel::new(3, 4, 9).unwrap(),
            MlpModel::new(3, 4, 9).unwrap()
        );
    }

    #[test]
    fn softmax_validation_and_gradcheck() {
        assert!(SoftmaxModel::new(0, 3).is_none());
        assert!(SoftmaxModel::new(3, 1).is_none());
        let data = Dataset::gaussian_blobs(48, 3, 3, 2.0, 31).unwrap();
        let mut m = SoftmaxModel::new(3, 3).unwrap();
        // Move off the symmetric zero point before checking gradients.
        let nudge: Vec<f64> = (0..m.num_params())
            .map(|i| 0.05 * (i as f64 % 7.0 - 3.0))
            .collect();
        m.sgd_step(&nudge, -1.0);
        check_gradients(&m, &data, 1e-3);
    }

    #[test]
    fn softmax_learns_separable_blobs() {
        let data = Dataset::gaussian_blobs(3000, 4, 3, 3.0, 32).unwrap();
        let mut m = SoftmaxModel::new(4, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut grad = vec![0.0; m.num_params()];
        for _ in 0..1500 {
            let idx = data.sample_indices(32, &mut rng);
            m.grad_mean(&data, &idx, &mut grad);
            m.sgd_step(&grad, 0.3);
        }
        let acc = m.accuracy(&data);
        assert!(acc > 0.92, "accuracy = {acc}");
    }

    #[test]
    fn softmax_probabilities_normalize() {
        let m = SoftmaxModel::new(2, 4).unwrap();
        let p = m.predict_proba(&[0.3, -0.7]);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Zero weights: uniform distribution.
        assert!(p.iter().all(|&v| (v - 0.25).abs() < 1e-12));
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}
