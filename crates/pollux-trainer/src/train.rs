//! The data-parallel adaptive training loop.
//!
//! Each step samples a mini-batch of `m` examples, splits it across
//! `K` simulated replicas, computes per-replica gradients, estimates
//! the gradient noise scale from the inter-replica spread (or from
//! consecutive gradients when `K = 1`), averages the gradients, and
//! applies an SGD update whose learning rate AdaScale scales by the
//! gain `r_t` (Eqn 5). Progress is accounted in scale-invariant
//! iterations, i.e. "statistical epochs".

use crate::dataset::Dataset;
use crate::model::GradModel;
use pollux_agent::{DifferencedGns, ReplicaGns};
use pollux_models::{AdaScale, EfficiencyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Trainer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Number of simulated data-parallel replicas `K ≥ 1`.
    pub replicas: usize,
    /// Total mini-batch size `m ≥ replicas`.
    pub batch_size: u64,
    /// Reference batch size `m0` (AdaScale's normalization point).
    pub m0: u64,
    /// Base learning rate η0 (the rate used at `m0`).
    pub eta0: f64,
    /// EWMA smoothing for the noise-scale estimators.
    pub gns_smoothing: f64,
    /// Scale the learning rate by AdaScale's gain (`false` = fixed
    /// η0, the naive large-batch baseline).
    pub use_adascale: bool,
    /// Heavy-ball momentum coefficient `µ ∈ [0, 1)` (0 = plain SGD).
    /// AdaScale was designed for momentum SGD; the gain accounting is
    /// unchanged, the velocity just low-passes the scaled updates.
    pub momentum: f64,
    /// RNG seed for batch sampling.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            replicas: 1,
            batch_size: 32,
            m0: 32,
            eta0: 0.05,
            gns_smoothing: 0.05,
            use_adascale: true,
            momentum: 0.0,
            seed: 0,
        }
    }
}

/// Per-step training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepStats {
    /// Mini-batch loss before the update.
    pub loss: f64,
    /// Learning rate applied.
    pub lr: f64,
    /// AdaScale gain `r_t` of this step.
    pub gain: f64,
    /// Current smoothed noise-scale estimate, if available.
    pub phi: Option<f64>,
    /// Examples consumed by this step.
    pub examples: u64,
}

/// Data-parallel SGD trainer with GNS measurement and AdaScale.
///
/// # Examples
///
/// ```
/// use pollux_trainer::{AdaptiveTrainer, Dataset, LinearModel, TrainerConfig};
///
/// let (data, _) = Dataset::linear_regression(1000, 4, 0.3, 42).unwrap();
/// let mut trainer = AdaptiveTrainer::new(
///     LinearModel::new(4),
///     data,
///     TrainerConfig {
///         replicas: 4,
///         batch_size: 128,
///         m0: 32,
///         eta0: 0.05,
///         ..Default::default()
///     },
/// )
/// .unwrap();
/// let first = trainer.step().loss;
/// for _ in 0..200 {
///     trainer.step();
/// }
/// assert!(trainer.full_loss() < first);           // training works
/// assert!(trainer.phi().unwrap() > 0.0);          // φ̂ measured en route
/// assert!(trainer.scale_invariant_iters() > 201.0); // batch 128 > m0 gains
/// ```
#[derive(Clone)]
pub struct AdaptiveTrainer<M: GradModel> {
    model: M,
    data: Dataset,
    config: TrainerConfig,
    replica_gns: ReplicaGns,
    diff_gns: DifferencedGns,
    adascale: AdaScale,
    rng: StdRng,
    total_examples: u64,
    steps: u64,
    velocity: Vec<f64>,
}

impl<M: GradModel> AdaptiveTrainer<M> {
    /// Creates a trainer. Returns `None` for degenerate configs
    /// (`replicas = 0`, `batch < replicas`, `m0 = 0`, `η0 ≤ 0`).
    pub fn new(model: M, data: Dataset, config: TrainerConfig) -> Option<Self> {
        if config.replicas == 0
            || config.batch_size < config.replicas as u64
            || !(0.0..1.0).contains(&config.momentum)
        {
            return None;
        }
        let dim = model.num_params();
        Some(Self {
            model,
            data,
            replica_gns: ReplicaGns::new(config.m0, config.gns_smoothing)?,
            diff_gns: DifferencedGns::new(config.m0, config.gns_smoothing)?,
            adascale: AdaScale::new(config.eta0, config.m0)?,
            rng: StdRng::seed_from_u64(config.seed),
            total_examples: 0,
            steps: 0,
            velocity: vec![0.0; dim],
            config,
        })
    }

    /// The trained model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The training dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// Mean loss over the full training dataset.
    pub fn full_loss(&self) -> f64 {
        self.model.full_loss(&self.data)
    }

    /// Total examples consumed.
    pub fn total_examples(&self) -> u64 {
        self.total_examples
    }

    /// Steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Scale-invariant progress Σ r_t (iterations at `m0`).
    pub fn scale_invariant_iters(&self) -> f64 {
        self.adascale.scale_invariant_iters()
    }

    /// The current smoothed noise-scale estimate φ̂ (examples), from
    /// the replica estimator when `K ≥ 2`, else the differenced one.
    pub fn phi(&self) -> Option<f64> {
        if self.config.replicas >= 2 {
            self.replica_gns.noise_scale()
        } else {
            self.diff_gns.noise_scale()
        }
    }

    /// Changes the total batch size mid-training (as `PolluxAgent`
    /// does after a re-allocation). Returns `false` when smaller than
    /// the replica count.
    pub fn set_batch_size(&mut self, m: u64) -> bool {
        if m < self.config.replicas as u64 {
            return false;
        }
        self.config.batch_size = m;
        true
    }

    /// The current efficiency snapshot from the measured φ̂
    /// (conservative `φ = 0` before estimates exist).
    pub fn efficiency_model(&self) -> EfficiencyModel {
        let phi = self.phi().unwrap_or(0.0).max(0.0);
        EfficiencyModel::from_noise_scale(self.config.m0, phi).expect("m0 >= 1 and phi >= 0")
    }

    /// Measures the gradient noise scale **at the current parameters**
    /// without updating the model: samples `iters` mini-batches of
    /// `probe_batch` split across 4 virtual replicas and feeds a fresh
    /// replica estimator. This is how a fixed-checkpoint φ_t (e.g. the
    /// paper's "measured at epoch 15") is obtained.
    ///
    /// Returns `None` when no estimate could be formed.
    pub fn measure_phi_static(&mut self, iters: usize, probe_batch: u64) -> Option<f64> {
        let k = 4usize;
        let per = (probe_batch / k as u64).max(1) as usize;
        let mut gns = ReplicaGns::new(self.config.m0, 0.1)?;
        for _ in 0..iters {
            let indices = self.data.sample_indices(per * k, &mut self.rng);
            let grads: Vec<Vec<f64>> = (0..k)
                .map(|r| {
                    let mut g = vec![0.0; self.model.num_params()];
                    self.model
                        .grad_mean(&self.data, &indices[r * per..(r + 1) * per], &mut g);
                    g
                })
                .collect();
            gns.update(&grads, (per * k) as u64);
        }
        gns.noise_scale()
    }

    /// Runs one training step.
    pub fn step(&mut self) -> StepStats {
        let m = self.config.batch_size;
        let k = self.config.replicas;
        let per = (m / k as u64).max(1) as usize;

        // Per-replica gradients on disjoint shards of the mini-batch.
        let indices = self.data.sample_indices(per * k, &mut self.rng);
        let mut replica_grads: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut grad = vec![0.0; self.model.num_params()];
        for r in 0..k {
            let shard = &indices[r * per..(r + 1) * per];
            let mut g = vec![0.0; self.model.num_params()];
            self.model.grad_mean(&self.data, shard, &mut g);
            replica_grads.push(g);
        }
        for g in &replica_grads {
            for (acc, v) in grad.iter_mut().zip(g) {
                *acc += v / k as f64;
            }
        }

        // Noise-scale measurement.
        if k >= 2 {
            self.replica_gns.update(&replica_grads, m);
        } else {
            self.diff_gns.update(&grad, m);
        }

        let eff = self.efficiency_model();
        let gain = self.adascale.gain(&eff, m);
        let lr = if self.config.use_adascale {
            self.adascale.learning_rate(&eff, m)
        } else {
            self.config.eta0
        };

        let loss = self.model.mean_loss(&self.data, &indices);
        if self.config.momentum > 0.0 {
            // Heavy-ball momentum: v ← µ·v + g; w ← w − η·v.
            for (v, g) in self.velocity.iter_mut().zip(&grad) {
                *v = self.config.momentum * *v + g;
            }
            self.model.sgd_step(&self.velocity, lr);
        } else {
            self.model.sgd_step(&grad, lr);
        }
        self.adascale.step(&eff, m);
        self.total_examples += (per * k) as u64;
        self.steps += 1;

        StepStats {
            loss,
            lr,
            gain,
            phi: self.phi(),
            examples: (per * k) as u64,
        }
    }

    /// Trains until the full-dataset loss falls below `target`,
    /// checking every `check_every` steps. Returns
    /// `(steps, examples)` on success, `None` if `max_steps` elapse
    /// first.
    pub fn train_until_loss(
        &mut self,
        target: f64,
        max_steps: u64,
        check_every: u64,
    ) -> Option<(u64, u64)> {
        let check = check_every.max(1);
        for s in 1..=max_steps {
            self.step();
            if s % check == 0 && self.model.full_loss(&self.data) <= target {
                return Some((self.steps, self.total_examples));
            }
        }
        if self.model.full_loss(&self.data) <= target {
            Some((self.steps, self.total_examples))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearModel, LogisticModel};

    fn regression_data(seed: u64) -> Dataset {
        Dataset::linear_regression(4000, 8, 0.5, seed).unwrap().0
    }

    fn trainer(
        replicas: usize,
        batch: u64,
        adascale: bool,
        seed: u64,
    ) -> AdaptiveTrainer<LinearModel> {
        let data = regression_data(100);
        AdaptiveTrainer::new(
            LinearModel::new(8),
            data,
            TrainerConfig {
                replicas,
                batch_size: batch,
                m0: 32,
                eta0: 0.05,
                gns_smoothing: 0.05,
                use_adascale: adascale,
                momentum: 0.0,
                seed,
            },
        )
        .unwrap()
    }

    #[test]
    fn config_validation() {
        let data = regression_data(1);
        let bad = TrainerConfig {
            replicas: 0,
            ..Default::default()
        };
        assert!(AdaptiveTrainer::new(LinearModel::new(8), data.clone(), bad).is_none());
        let bad = TrainerConfig {
            replicas: 64,
            batch_size: 32,
            ..Default::default()
        };
        assert!(AdaptiveTrainer::new(LinearModel::new(8), data.clone(), bad).is_none());
        let bad = TrainerConfig {
            eta0: 0.0,
            ..Default::default()
        };
        assert!(AdaptiveTrainer::new(LinearModel::new(8), data, bad).is_none());
    }

    #[test]
    fn training_reduces_loss() {
        let mut t = trainer(4, 64, true, 0);
        let first = t.step().loss;
        for _ in 0..500 {
            t.step();
        }
        let last = t.model().full_loss(&regression_data(100));
        assert!(last < first * 0.5, "loss {first} -> {last}");
        assert_eq!(t.steps(), 501);
        assert_eq!(t.total_examples(), 501 * 64);
    }

    #[test]
    fn phi_estimates_become_available_and_positive() {
        let mut t = trainer(4, 128, true, 1);
        for _ in 0..300 {
            t.step();
        }
        let phi = t.phi().unwrap();
        assert!(phi.is_finite() && phi > 0.0, "phi = {phi}");
    }

    #[test]
    fn single_replica_uses_differenced_estimator() {
        // Compare estimators mid-training, before SGD oscillates
        // around the optimum (where φ legitimately diverges). Batch 64
        // gives the replica estimator 16 examples per replica; at 8 the
        // inter-replica variance estimate transiently degenerates
        // (|G|² ≤ 0 ⇒ φ = ∞) on some RNG streams.
        let mut t1 = trainer(1, 64, true, 2);
        let mut t4 = trainer(4, 64, true, 2);
        for _ in 0..120 {
            t1.step();
            t4.step();
        }
        let p1 = t1.phi().unwrap();
        let p4 = t4.phi().unwrap();
        assert!(p1 > 0.0 && p4 > 0.0);
        assert!(p1.is_finite() && p4.is_finite(), "p1 = {p1}, p4 = {p4}");
        // Same workload: the two estimators agree within a small factor
        // (both are noisy).
        let ratio = p1.max(p4) / p1.min(p4);
        assert!(ratio < 4.0, "p1 = {p1}, p4 = {p4}");
    }

    #[test]
    fn phi_diverges_near_convergence() {
        // Once the model oscillates around the optimum, the measured
        // noise scale grows very large — the Sec. 2.2 behavior that
        // lets Pollux use big batches late in training.
        // Sample "mid" early enough that the batch-64 run is still far
        // from the optimum; by ~250 steps φ has already started its
        // climb and the late/mid contrast washes out.
        let mut t = trainer(4, 64, true, 2);
        for _ in 0..120 {
            t.step();
        }
        let mid = t.phi().unwrap();
        for _ in 0..4000 {
            t.step();
        }
        let late = t.phi().unwrap();
        assert!(
            late > 3.0 * mid || late.is_infinite(),
            "mid {mid}, late {late}"
        );
    }

    #[test]
    fn adascale_gain_exceeds_one_for_large_batches() {
        let mut t = trainer(4, 512, true, 3);
        for _ in 0..300 {
            t.step();
        }
        let s = t.step();
        assert!(s.gain > 1.0, "gain = {}", s.gain);
        assert!(s.lr > 0.05, "lr = {}", s.lr);
        // Gain is bounded by linear scaling m/m0 = 16.
        assert!(s.gain <= 16.0 + 1e-9);
    }

    #[test]
    fn adascale_large_batch_matches_small_batch_progress() {
        // The core AdaScale property (Sec. 2.2): a batch-256 run with
        // AdaScale reaches the same loss in roughly the predicted
        // number of examples: 1/EFFICIENCY(m) times the m0 run's
        // examples, not m/m0 times.
        // Check frequently: at batch 256 a coarse check interval
        // quantizes the measured examples (25 steps = 6400 examples)
        // enough to mask the efficiency gap this test asserts on.
        let target = 0.18;
        let (_, ex_small) = trainer(1, 32, true, 4)
            .train_until_loss(target, 60_000, 5)
            .expect("small-batch run must converge");

        let mut big = trainer(4, 256, true, 4);
        let (_, ex_big) = big
            .train_until_loss(target, 60_000, 5)
            .expect("large-batch run must converge");
        let eff = big.efficiency_model().efficiency(256);
        let predicted = ex_small as f64 / eff;
        let ratio = ex_big as f64 / predicted;
        assert!(
            (0.3..3.0).contains(&ratio),
            "examples: small {ex_small}, big {ex_big}, eff {eff:.3}, ratio {ratio:.2}"
        );
        // And AdaScale's examples must be far below naive linear
        // scaling of the step count (which would be 8x the examples).
        assert!(ex_big < ex_small * 8, "big {ex_big} vs small {ex_small}");
    }

    #[test]
    fn adascale_beats_fixed_lr_at_large_batch() {
        // With fixed η0 at batch 512, each step makes m0-step-sized
        // progress: examples consumed explode versus AdaScale.
        let target = 0.2;
        let with = trainer(4, 512, true, 5).train_until_loss(target, 40_000, 25);
        let without = trainer(4, 512, false, 5).train_until_loss(target, 40_000, 25);
        let (_, ex_with) = with.expect("adascale run converges");
        match without {
            Some((_, ex_without)) => {
                assert!(
                    ex_with as f64 <= 0.7 * ex_without as f64,
                    "adascale {ex_with} vs fixed {ex_without}"
                );
            }
            None => {
                // Fixed-LR didn't converge within budget: also a pass.
            }
        }
    }

    #[test]
    fn batch_size_changes_midtraining() {
        let mut t = trainer(4, 64, true, 6);
        for _ in 0..50 {
            t.step();
        }
        assert!(t.set_batch_size(256));
        let s = t.step();
        assert_eq!(s.examples, 256);
        assert!(!t.set_batch_size(2), "below replica count must fail");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = trainer(2, 64, true, 7);
        let mut b = trainer(2, 64, true, 7);
        for _ in 0..100 {
            a.step();
            b.step();
        }
        assert_eq!(a.model().params(), b.model().params());
        assert_eq!(a.phi(), b.phi());
    }

    #[test]
    fn momentum_validation() {
        let data = regression_data(1);
        let bad = TrainerConfig {
            momentum: 1.0,
            ..Default::default()
        };
        assert!(AdaptiveTrainer::new(LinearModel::new(8), data.clone(), bad).is_none());
        let bad = TrainerConfig {
            momentum: -0.1,
            ..Default::default()
        };
        assert!(AdaptiveTrainer::new(LinearModel::new(8), data.clone(), bad).is_none());
        let ok = TrainerConfig {
            momentum: 0.9,
            ..Default::default()
        };
        assert!(AdaptiveTrainer::new(LinearModel::new(8), data, ok).is_some());
    }

    #[test]
    fn momentum_converges_with_lower_lr() {
        // Heavy-ball with mu = 0.9 effectively multiplies the step by
        // 1/(1-mu); with eta0 scaled down accordingly it converges at
        // least comparably per example to plain SGD.
        let data = regression_data(100);
        let mut plain = AdaptiveTrainer::new(
            LinearModel::new(8),
            data.clone(),
            TrainerConfig {
                replicas: 2,
                batch_size: 64,
                eta0: 0.05,
                ..Default::default()
            },
        )
        .unwrap();
        let mut heavy = AdaptiveTrainer::new(
            LinearModel::new(8),
            data,
            TrainerConfig {
                replicas: 2,
                batch_size: 64,
                eta0: 0.005,
                momentum: 0.9,
                ..Default::default()
            },
        )
        .unwrap();
        let p = plain.train_until_loss(0.2, 20_000, 10);
        let h = heavy.train_until_loss(0.2, 20_000, 10);
        assert!(p.is_some(), "plain SGD must converge");
        assert!(h.is_some(), "momentum SGD must converge");
        let (_, ex_p) = p.unwrap();
        let (_, ex_h) = h.unwrap();
        // Within 2x of each other per example (roughly equivalent tuning).
        assert!(ex_h < 2 * ex_p, "momentum {ex_h} vs plain {ex_p}");
    }

    #[test]
    fn logistic_end_to_end_with_adascale() {
        let data = Dataset::two_gaussians(3000, 4, 1.5, 21).unwrap();
        let mut t = AdaptiveTrainer::new(
            LogisticModel::new(4),
            data.clone(),
            TrainerConfig {
                replicas: 4,
                batch_size: 128,
                m0: 32,
                eta0: 0.3,
                gns_smoothing: 0.05,
                use_adascale: true,
                momentum: 0.0,
                seed: 8,
            },
        )
        .unwrap();
        for _ in 0..800 {
            t.step();
        }
        let acc = t.model().accuracy(&data);
        assert!(acc > 0.9, "accuracy = {acc}");
    }
}
