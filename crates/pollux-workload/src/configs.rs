//! User-side job configurations for the baseline schedulers.
//!
//! Pollux decides GPUs and batch sizes itself, but Tiresias and
//! Optimus need them from the user:
//!
//! - [`tuned_config`] reproduces the idealized **TunedJobs** setup of
//!   Sec. 5.2: a GPU count is *valid* if, using its optimal batch
//!   size, the job achieves 50–80 % of the ideal (linear) speedup over
//!   one GPU; the configuration is drawn uniformly from the valid set.
//! - [`realistic_config`] reproduces Sec. 5.3.1: the GPU count comes
//!   from the (user-chosen, often poor) Microsoft-trace distribution
//!   and the batch size is drawn within 2× of the most efficient batch
//!   size for that GPU count.

use crate::models::ModelProfile;
use pollux_models::{EfficiencyModel, GoodputModel, PlacementShape};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A user-submitted `(GPUs, batch size)` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserConfig {
    /// Requested number of GPUs (fixed for the job's lifetime under
    /// non-adaptive schedulers).
    pub gpus: u32,
    /// Total batch size.
    pub batch_size: u64,
}

/// Builds the goodput model of `profile` at mid-training (the φ a
/// careful user would have measured when tuning).
fn midtraining_model(profile: &ModelProfile) -> GoodputModel {
    let phi = profile.phi_at(0.5);
    let eff =
        EfficiencyModel::from_noise_scale(profile.m0, phi).expect("profile m0 and phi are valid");
    GoodputModel::new(profile.params, eff, profile.limits)
        .expect("profile limits.min == m0 by test invariant")
}

/// The placement shape a job with `gpus` GPUs gets on 4-GPU nodes,
/// packed as tightly as possible (the assumption behind the paper's
/// tuning procedure).
pub(crate) fn packed_shape(gpus: u32, gpus_per_node: u32) -> PlacementShape {
    let nodes = gpus.div_ceil(gpus_per_node).max(1);
    PlacementShape::new(gpus, nodes).expect("nodes <= gpus for gpus >= 1")
}

/// GPU counts whose optimally-batched goodput achieves 50–80 % of the
/// ideal linear speedup (Sec. 5.2's validity criterion), evaluated at
/// mid-training φ on `gpus_per_node`-GPU nodes up to `max_gpus`.
///
/// One GPU is always valid (its "speedup" is exactly 1).
pub fn valid_tuned_gpu_counts(
    profile: &ModelProfile,
    max_gpus: u32,
    gpus_per_node: u32,
) -> Vec<u32> {
    let model = midtraining_model(profile);
    let base = model.max_goodput(model.reference_shape());
    let mut valid = vec![1];
    if base <= 0.0 {
        return valid;
    }
    for k in 2..=max_gpus {
        let shape = packed_shape(k, gpus_per_node);
        let speedup = model.max_goodput(shape) / base;
        let frac = speedup / k as f64;
        if (0.5..=0.8).contains(&frac) {
            valid.push(k);
        }
    }
    valid
}

/// Draws an idealized TunedJobs configuration (Sec. 5.2): a uniformly
/// random valid GPU count, with the goodput-optimal batch size for it.
pub fn tuned_config<R: Rng>(
    profile: &ModelProfile,
    max_gpus: u32,
    gpus_per_node: u32,
    rng: &mut R,
) -> UserConfig {
    let model = midtraining_model(profile);
    let valid = valid_tuned_gpu_counts(profile, max_gpus, gpus_per_node);
    let gpus = valid[rng.gen_range(0..valid.len())];
    let shape = packed_shape(gpus, gpus_per_node);
    let batch_size = model
        .optimal_batch_size(shape)
        .map(|(m, _)| m)
        .unwrap_or(profile.m0);
    UserConfig { gpus, batch_size }
}

/// Draws a realistic user configuration (Sec. 5.3.1): `gpus` comes from
/// the trace (the caller samples it from the Microsoft distribution)
/// and the batch size is uniform within a factor of 2 of the most
/// efficient batch size for that GPU count.
pub fn realistic_config<R: Rng>(
    profile: &ModelProfile,
    trace_gpus: u32,
    gpus_per_node: u32,
    rng: &mut R,
) -> UserConfig {
    let model = midtraining_model(profile);
    let gpus = trace_gpus.max(1);
    let shape = packed_shape(gpus, gpus_per_node);
    let m_opt = model
        .optimal_batch_size(shape)
        .map(|(m, _)| m)
        .unwrap_or(profile.m0);
    let (lo_bound, hi_bound) = model
        .limits
        .range(shape)
        .unwrap_or((profile.m0, profile.m0));
    let lo = (m_opt / 2).clamp(lo_bound, hi_bound);
    let hi = (m_opt * 2).clamp(lo_bound, hi_bound);
    let batch_size = if lo >= hi { lo } else { rng.gen_range(lo..=hi) };
    UserConfig { gpus, batch_size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packed_shape_fills_nodes() {
        assert_eq!(packed_shape(1, 4), PlacementShape::new(1, 1).unwrap());
        assert_eq!(packed_shape(4, 4), PlacementShape::new(4, 1).unwrap());
        assert_eq!(packed_shape(5, 4), PlacementShape::new(5, 2).unwrap());
        assert_eq!(packed_shape(16, 4), PlacementShape::new(16, 4).unwrap());
    }

    #[test]
    fn valid_counts_always_include_one() {
        for kind in ModelKind::ALL {
            let p = kind.profile();
            let v = valid_tuned_gpu_counts(&p, 16, 4);
            assert!(v.contains(&1), "{}: {:?}", p.name, v);
            // Counts are sorted and unique by construction.
            for w in v.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn some_model_scales_beyond_one_gpu() {
        // At least the scalable models must have multi-GPU valid
        // configurations, otherwise the TunedJobs baseline degenerates.
        let scalable = [ModelKind::ResNet18Cifar10, ModelKind::ResNet50ImageNet];
        for kind in scalable {
            let p = kind.profile();
            let v = valid_tuned_gpu_counts(&p, 16, 4);
            assert!(
                v.iter().any(|&k| k > 1),
                "{}: no multi-GPU valid config: {:?}",
                p.name,
                v
            );
        }
    }

    #[test]
    fn tuned_config_is_valid_and_batch_feasible() {
        let mut rng = StdRng::seed_from_u64(5);
        for kind in ModelKind::ALL {
            let p = kind.profile();
            let valid = valid_tuned_gpu_counts(&p, 16, 4);
            for _ in 0..20 {
                let c = tuned_config(&p, 16, 4, &mut rng);
                assert!(
                    valid.contains(&c.gpus),
                    "{}: {:?} not in {:?}",
                    p.name,
                    c,
                    valid
                );
                let shape = packed_shape(c.gpus, 4);
                let (lo, hi) = p.limits.range(shape).unwrap();
                assert!(c.batch_size >= lo && c.batch_size <= hi);
            }
        }
    }

    #[test]
    fn realistic_config_within_2x_of_optimal() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = ModelKind::ResNet18Cifar10.profile();
        let model = midtraining_model(&p);
        for gpus in [1u32, 2, 4, 8] {
            let shape = packed_shape(gpus, 4);
            let (m_opt, _) = model.optimal_batch_size(shape).unwrap();
            for _ in 0..20 {
                let c = realistic_config(&p, gpus, 4, &mut rng);
                assert_eq!(c.gpus, gpus);
                assert!(
                    c.batch_size * 2 >= m_opt && c.batch_size <= m_opt * 2,
                    "batch {} vs optimal {m_opt}",
                    c.batch_size
                );
            }
        }
    }

    #[test]
    fn realistic_config_respects_memory_limits() {
        let mut rng = StdRng::seed_from_u64(7);
        for kind in ModelKind::ALL {
            let p = kind.profile();
            for gpus in [1u32, 2, 8, 16] {
                let c = realistic_config(&p, gpus, 4, &mut rng);
                let shape = packed_shape(c.gpus, 4);
                let (lo, hi) = p.limits.range(shape).unwrap();
                assert!(
                    c.batch_size >= lo && c.batch_size <= hi,
                    "{}: {:?}",
                    p.name,
                    c
                );
            }
        }
    }

    #[test]
    fn zero_trace_gpus_clamped_to_one() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = ModelKind::NeuMFMovieLens.profile();
        let c = realistic_config(&p, 0, 4, &mut rng);
        assert_eq!(c.gpus, 1);
    }
}
