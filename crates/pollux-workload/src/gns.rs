//! Gradient-noise-scale trajectories φ(progress).
//!
//! The noise scale is non-constant: it "tends to gradually increase
//! during training, by up to 10× or more" (Sec. 2.2, citing McCandlish
//! et al.), and jumps sharply when the learning rate is decayed
//! (Fig 2a shows ImageNet's efficiency spiking at epochs 30 and 60).
//! We model φ as geometric interpolation from `phi_start` to `phi_end`
//! over normalized progress `p ∈ [0, 1]`, times step *boosts* that
//! activate at learning-rate-decay points.

use serde::{Deserialize, Serialize};

/// A φ(progress) trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GnsProfile {
    /// Noise scale at the start of training (examples).
    pub phi_start: f64,
    /// Noise scale at the end of training, before boosts (examples).
    pub phi_end: f64,
    /// `(progress threshold, multiplier)` pairs: once `p ≥ threshold`
    /// the multiplier applies (learning-rate decay events).
    pub boosts: Vec<(f64, f64)>,
}

impl GnsProfile {
    /// Creates a trajectory. Returns `None` when either endpoint is
    /// non-positive/non-finite, or any boost is malformed.
    pub fn new(phi_start: f64, phi_end: f64, boosts: Vec<(f64, f64)>) -> Option<Self> {
        let ok = phi_start > 0.0
            && phi_start.is_finite()
            && phi_end > 0.0
            && phi_end.is_finite()
            && boosts
                .iter()
                .all(|&(p, m)| (0.0..=1.0).contains(&p) && m > 0.0 && m.is_finite());
        if ok {
            Some(Self {
                phi_start,
                phi_end,
                boosts,
            })
        } else {
            None
        }
    }

    /// A flat trajectory (constant φ), useful in tests.
    pub fn constant(phi: f64) -> Option<Self> {
        Self::new(phi, phi, vec![])
    }

    /// The noise scale at normalized progress `p` (clamped to [0, 1]).
    pub fn phi(&self, progress: f64) -> f64 {
        let p = progress.clamp(0.0, 1.0);
        // Geometric interpolation keeps the growth multiplicative, the
        // empirically observed shape.
        let base = self.phi_start * (self.phi_end / self.phi_start).powf(p);
        let boost: f64 = self
            .boosts
            .iter()
            .filter(|&&(thr, _)| p >= thr)
            .map(|&(_, m)| m)
            .product();
        base * boost
    }

    /// Total growth factor over the whole trajectory (including boosts).
    pub fn total_growth(&self) -> f64 {
        self.phi(1.0) / self.phi(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn validation() {
        assert!(GnsProfile::new(100.0, 1000.0, vec![]).is_some());
        assert!(GnsProfile::new(0.0, 1000.0, vec![]).is_none());
        assert!(GnsProfile::new(100.0, -1.0, vec![]).is_none());
        assert!(GnsProfile::new(100.0, f64::INFINITY, vec![]).is_none());
        assert!(GnsProfile::new(100.0, 1000.0, vec![(1.5, 2.0)]).is_none());
        assert!(GnsProfile::new(100.0, 1000.0, vec![(0.5, 0.0)]).is_none());
        assert!(GnsProfile::new(100.0, 1000.0, vec![(0.5, 2.0)]).is_some());
    }

    #[test]
    fn endpoints_match() {
        let g = GnsProfile::new(100.0, 1000.0, vec![]).unwrap();
        assert!((g.phi(0.0) - 100.0).abs() < 1e-9);
        assert!((g.phi(1.0) - 1000.0).abs() < 1e-9);
        // Geometric midpoint.
        assert!((g.phi(0.5) - (100.0f64 * 1000.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn progress_is_clamped() {
        let g = GnsProfile::new(100.0, 1000.0, vec![]).unwrap();
        assert_eq!(g.phi(-1.0), g.phi(0.0));
        assert_eq!(g.phi(2.0), g.phi(1.0));
    }

    #[test]
    fn boosts_activate_at_thresholds() {
        // ImageNet-style: 3x at p = 0.35, 2x at p = 0.7.
        let g = GnsProfile::new(500.0, 5000.0, vec![(0.35, 3.0), (0.7, 2.0)]).unwrap();
        let before = g.phi(0.34);
        let after = g.phi(0.36);
        // The jump dominates the smooth growth over Δp = 0.02.
        assert!(after / before > 2.5, "jump = {}", after / before);
        assert!((g.total_growth() - 10.0 * 6.0).abs() < 1e-6);
    }

    #[test]
    fn constant_profile_is_flat() {
        let g = GnsProfile::constant(123.0).unwrap();
        assert_eq!(g.phi(0.0), 123.0);
        assert_eq!(g.phi(0.5), 123.0);
        assert_eq!(g.phi(1.0), 123.0);
        assert_eq!(g.total_growth(), 1.0);
    }

    proptest! {
        #[test]
        fn phi_positive_and_monotone_for_growing_profiles(
            start in 1.0f64..1e4,
            growth in 1.0f64..100.0,
            p1 in 0.0f64..1.0,
            p2 in 0.0f64..1.0,
        ) {
            let g = GnsProfile::new(start, start * growth, vec![(0.5, 2.0)]).unwrap();
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = g.phi(lo);
            let b = g.phi(hi);
            prop_assert!(a > 0.0 && b > 0.0);
            prop_assert!(b >= a - 1e-9, "phi not monotone: {} at {} vs {} at {}", a, lo, b, hi);
        }
    }
}
