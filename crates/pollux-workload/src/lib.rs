//! Synthetic DL workloads mirroring the paper's evaluation setup
//! (Sec. 5.1, Table 1, Fig 6).
//!
//! The paper measures five real models (ResNet-50/ImageNet, YOLOv3/VOC,
//! DeepSpeech2/CMU-ARCTIC, ResNet18/CIFAR-10, NeuMF/MovieLens) on real
//! GPUs and replays the measurements in its simulator. We substitute
//! analytic **ground-truth profiles** per model: true θsys parameters
//! for the throughput model, and a gradient-noise-scale trajectory
//! φ(progress) that rises over training (with learning-rate-decay
//! boosts for ImageNet, reproducing Fig 2a). The scheduler never sees
//! these profiles — it sees noisy measurements, exactly as in the
//! paper.
//!
//! - [`gns`] — φ(progress) trajectories;
//! - [`models`] — the five Table-1 model profiles;
//! - [`tracegen`] — Microsoft-trace-like job generation (diurnal
//!   submission pattern, category mix);
//! - [`configs`] — "TunedJobs" (Sec. 5.2) and "realistic user
//!   configuration" (Sec. 5.3.1) generators for the baseline
//!   schedulers.

pub mod configs;
pub mod gns;
pub mod models;
pub mod tracegen;

pub use configs::{realistic_config, tuned_config, valid_tuned_gpu_counts, UserConfig};
pub use gns::GnsProfile;
pub use models::{ModelKind, ModelProfile, SizeCategory};
pub use tracegen::{JobSpec, TraceConfig, TraceGenerator};
