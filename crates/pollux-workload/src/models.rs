//! Ground-truth profiles of the five evaluation models (Table 1).
//!
//! Each profile carries the *true* θsys throughput parameters (what the
//! paper measured on its T4 testbed, which `PolluxAgent` must learn
//! from noisy samples), a φ(progress) trajectory, batch-size limits,
//! and the total work to reach the Table-1 validation metric.
//!
//! The absolute constants are calibrated so that (a) single-GPU
//! throughput and 16-GPU scaling curves have the shapes of Figs 1 and
//! 3, and (b) single-GPU completion times land each model in its
//! Table-1 GPU-time category (Small < 1 GPU-h, Medium 1–10, Large
//! 10–100, XLarge 100–1000).

use crate::gns::GnsProfile;
use pollux_models::{BatchSizeLimits, PlacementShape, ThroughputParams};
use serde::{Deserialize, Serialize};

/// GPU-time categories from the Microsoft trace analysis (Sec. 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeCategory {
    /// 0–1 GPU-hours.
    Small,
    /// 1–10 GPU-hours.
    Medium,
    /// 10–100 GPU-hours.
    Large,
    /// 100–1000 GPU-hours.
    XLarge,
}

/// The five evaluation models of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// ResNet18 on CIFAR-10 (image classification, Small).
    ResNet18Cifar10,
    /// NeuMF on MovieLens (collaborative filtering, Small).
    NeuMFMovieLens,
    /// DeepSpeech2 on CMU-ARCTIC (speech recognition, Medium).
    DeepSpeech2Arctic,
    /// YOLOv3 on PASCAL-VOC (object detection, Large).
    Yolov3Voc,
    /// ResNet-50 on ImageNet (image classification, XLarge).
    ResNet50ImageNet,
}

impl ModelKind {
    /// All five models, in Table-1 order of increasing size.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::ResNet18Cifar10,
        ModelKind::NeuMFMovieLens,
        ModelKind::DeepSpeech2Arctic,
        ModelKind::Yolov3Voc,
        ModelKind::ResNet50ImageNet,
    ];

    /// This model's ground-truth profile.
    pub fn profile(&self) -> ModelProfile {
        match self {
            ModelKind::ResNet18Cifar10 => ModelProfile {
                kind: *self,
                name: "ResNet18/CIFAR-10",
                category: SizeCategory::Small,
                m0: 128,
                eta0: 0.1,
                limits: BatchSizeLimits::new(128, 8192, 1024).expect("static"),
                params: ThroughputParams::new(0.010, 1.0e-3, 0.02, 0.002, 0.07, 0.008, 1.8)
                    .expect("static"),
                gns: GnsProfile::new(300.0, 3500.0, vec![(0.5, 1.5)]).expect("static"),
                total_work: 2.5e6,
            },
            ModelKind::NeuMFMovieLens => ModelProfile {
                kind: *self,
                name: "NeuMF/MovieLens",
                category: SizeCategory::Small,
                m0: 256,
                eta0: 0.001,
                limits: BatchSizeLimits::new(256, 32_768, 4096).expect("static"),
                params: ThroughputParams::new(0.002, 5.0e-5, 0.010, 0.001, 0.05, 0.005, 2.0)
                    .expect("static"),
                gns: GnsProfile::new(600.0, 9000.0, vec![]).expect("static"),
                total_work: 4.0e7,
            },
            ModelKind::DeepSpeech2Arctic => ModelProfile {
                kind: *self,
                name: "DeepSpeech2/CMU-ARCTIC",
                category: SizeCategory::Medium,
                m0: 32,
                eta0: 3.0e-4,
                limits: BatchSizeLimits::new(32, 1024, 64).expect("static"),
                params: ThroughputParams::new(0.050, 1.0e-2, 0.10, 0.005, 0.30, 0.010, 1.6)
                    .expect("static"),
                gns: GnsProfile::new(50.0, 700.0, vec![]).expect("static"),
                total_work: 1.2e6,
            },
            ModelKind::Yolov3Voc => ModelProfile {
                kind: *self,
                name: "YOLOv3/PASCAL-VOC",
                category: SizeCategory::Large,
                m0: 8,
                eta0: 1.0e-3,
                limits: BatchSizeLimits::new(8, 512, 16).expect("static"),
                params: ThroughputParams::new(0.10, 6.0e-2, 0.08, 0.004, 0.25, 0.010, 2.0)
                    .expect("static"),
                gns: GnsProfile::new(30.0, 500.0, vec![(0.6, 1.5)]).expect("static"),
                total_work: 1.5e6,
            },
            ModelKind::ResNet50ImageNet => ModelProfile {
                kind: *self,
                name: "ResNet-50/ImageNet",
                category: SizeCategory::XLarge,
                m0: 256,
                eta0: 0.1,
                limits: BatchSizeLimits::new(256, 32_768, 256).expect("static"),
                params: ThroughputParams::new(0.020, 3.0e-3, 0.05, 0.003, 0.15, 0.006, 2.2)
                    .expect("static"),
                // Learning-rate decays at epochs 30 and 60 of 90 produce
                // the Fig 2a efficiency spikes.
                gns: GnsProfile::new(600.0, 6000.0, vec![(1.0 / 3.0, 3.0), (2.0 / 3.0, 2.0)])
                    .expect("static"),
                total_work: 1.3e8,
            },
        }
    }
}

/// A complete ground-truth model description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Which Table-1 model this is.
    pub kind: ModelKind,
    /// Human-readable `model/dataset` name.
    pub name: &'static str,
    /// GPU-time category.
    pub category: SizeCategory,
    /// Initial (user-submitted) batch size.
    pub m0: u64,
    /// Initial learning rate.
    pub eta0: f64,
    /// Batch-size limits (memory, global cap).
    pub limits: BatchSizeLimits,
    /// True θsys throughput parameters.
    pub params: ThroughputParams,
    /// True gradient-noise-scale trajectory.
    pub gns: GnsProfile,
    /// Examples (at m0-efficiency) to reach the validation target.
    pub total_work: f64,
}

impl ModelProfile {
    /// The true noise scale at normalized progress `p`.
    pub fn phi_at(&self, progress: f64) -> f64 {
        self.gns.phi(progress)
    }

    /// Single-GPU completion time at `m0` with no adaptation, in
    /// GPU-seconds — the nominal job size used for categorization.
    pub fn nominal_gpu_seconds(&self) -> f64 {
        let tput = self.params.throughput(PlacementShape::single(), self.m0);
        self.total_work / tput
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_internally_consistent() {
        for kind in ModelKind::ALL {
            let p = kind.profile();
            assert_eq!(p.kind, kind);
            assert_eq!(p.limits.min, p.m0, "{}: m0 must equal limits.min", p.name);
            assert!(p.params.is_valid(), "{}: invalid throughput params", p.name);
            assert!(p.total_work > 0.0);
            assert!(p.eta0 > 0.0);
            // m0 must fit on a single GPU for every model (the paper
            // starts each job on one GPU).
            assert!(
                p.limits.max_per_gpu >= p.m0,
                "{}: m0 does not fit on one GPU",
                p.name
            );
        }
    }

    #[test]
    fn nominal_sizes_match_table1_categories() {
        for kind in ModelKind::ALL {
            let p = kind.profile();
            let hours = p.nominal_gpu_seconds() / 3600.0;
            let (lo, hi) = match p.category {
                SizeCategory::Small => (0.0, 1.0),
                SizeCategory::Medium => (1.0, 10.0),
                SizeCategory::Large => (10.0, 100.0),
                SizeCategory::XLarge => (100.0, 1000.0),
            };
            assert!(
                hours > lo && hours <= hi,
                "{}: {hours:.2} GPU-h outside {:?} ({lo}-{hi})",
                p.name,
                p.category
            );
        }
    }

    #[test]
    fn noise_scales_grow_substantially() {
        // Sec. 2.2: φ grows during training, "up to 10× or more".
        for kind in ModelKind::ALL {
            let p = kind.profile();
            let growth = p.gns.total_growth();
            assert!(
                growth >= 10.0,
                "{}: φ growth {growth:.1}x is too small",
                p.name
            );
            assert!(
                growth <= 200.0,
                "{}: φ growth {growth:.1}x is absurd",
                p.name
            );
        }
    }

    #[test]
    fn imagenet_has_lr_decay_boosts() {
        let p = ModelKind::ResNet50ImageNet.profile();
        assert_eq!(p.gns.boosts.len(), 2);
        // Efficiency at batch 8000 improves sharply after the first
        // decay (the Fig 2a shape).
        use pollux_models::EfficiencyModel;
        let eff = |progress: f64| {
            EfficiencyModel::from_noise_scale(p.m0, p.phi_at(progress))
                .unwrap()
                .efficiency(8000)
        };
        assert!(
            eff(0.05) < 0.25,
            "early large-batch efficiency: {}",
            eff(0.05)
        );
        assert!(
            eff(0.95) > 0.6,
            "late large-batch efficiency: {}",
            eff(0.95)
        );
    }

    #[test]
    fn single_gpu_throughputs_are_plausible() {
        // Sanity band: between 5 and 50_000 examples/s depending on
        // model (speech/detection slow, recommendation fast).
        for kind in ModelKind::ALL {
            let p = kind.profile();
            let tput = p.params.throughput(PlacementShape::single(), p.m0);
            assert!(
                tput > 5.0 && tput < 50_000.0,
                "{}: single-GPU throughput {tput:.0}/s",
                p.name
            );
        }
    }

    #[test]
    fn resnet18_matches_fig1a_shape() {
        // Fig 1a: at batch 2048 ResNet18 scales much better to 16 GPUs
        // than at batch 512.
        let p = ModelKind::ResNet18Cifar10.profile();
        let k16 = PlacementShape::new(16, 4).unwrap();
        let k1 = PlacementShape::single();
        let scale_512 = p.params.throughput(k16, 512) / p.params.throughput(k1, 512);
        let scale_2048 = p.params.throughput(k16, 2048) / p.params.throughput(k1, 2048);
        assert!(scale_2048 > 1.5 * scale_512, "{scale_2048} vs {scale_512}");
        // And the absolute 16-GPU large-batch throughput lands in the
        // Fig 1a ballpark (≈ 8000–14000 images/s).
        let t = p.params.throughput(k16, 2048);
        assert!((6000.0..16_000.0).contains(&t), "throughput = {t:.0}");
    }
}
