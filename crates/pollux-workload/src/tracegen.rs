//! Microsoft-trace-like workload generation (Sec. 5.1, Fig 6).
//!
//! The paper samples 160 job submissions from an 8-hour window of the
//! Microsoft (Philly) cluster trace whose submission rate peaks in the
//! fourth hour at ~3× the first hour's rate, and maps each trace job to
//! a Table-1 model in the same GPU-time category (38 % / 38 % / 17 % /
//! 5 % / 2 %). We reproduce those published statistics directly.

use crate::configs::{realistic_config, tuned_config, UserConfig};
use crate::models::{ModelKind, SizeCategory};
use pollux_cluster::JobId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Hourly submission-rate weights over the 8-hour window (Fig 6: the
/// fourth hour peaks at 3× the first).
const HOURLY_WEIGHTS: [f64; 8] = [1.0, 1.5, 2.2, 3.0, 2.6, 2.0, 1.5, 1.2];

/// Model mix matching the trace's category fractions (Table 1).
const MODEL_MIX: [(ModelKind, f64); 5] = [
    (ModelKind::ResNet18Cifar10, 0.38),
    (ModelKind::NeuMFMovieLens, 0.38),
    (ModelKind::DeepSpeech2Arctic, 0.17),
    (ModelKind::Yolov3Voc, 0.05),
    (ModelKind::ResNet50ImageNet, 0.02),
];

/// Configuration of the trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Base number of job submissions (the paper uses 160).
    pub num_jobs: usize,
    /// Window length in hours (the paper uses 8).
    pub duration_hours: f64,
    /// Load multiplier: scales the number of jobs (Fig 8 sweeps
    /// 0.5×–2×).
    pub load_multiplier: f64,
    /// Largest GPU count considered when tuning configs.
    pub max_gpus: u32,
    /// GPUs per node (placement packing assumption).
    pub gpus_per_node: u32,
    /// Log-normal σ of per-job work-size variation.
    pub work_sigma: f64,
    /// RNG seed; each seed is one "trace" (the paper averages 8).
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            num_jobs: 160,
            duration_hours: 8.0,
            load_multiplier: 1.0,
            max_gpus: 16,
            gpus_per_node: 4,
            work_sigma: 0.45,
            seed: 0,
        }
    }
}

/// One synthetic job submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Stable identifier (submission order).
    pub id: JobId,
    /// Which Table-1 model the job trains.
    pub kind: ModelKind,
    /// Submission time in seconds from the window start.
    pub submit_time: f64,
    /// Total work in examples at m0-efficiency (profile work × a
    /// per-job size factor).
    pub work: f64,
    /// Idealized TunedJobs configuration (Sec. 5.2).
    pub tuned: UserConfig,
    /// Realistic trace-derived configuration (Sec. 5.3.1).
    pub realistic: UserConfig,
}

/// Deterministic trace generator.
///
/// # Examples
///
/// ```
/// use pollux_workload::{TraceConfig, TraceGenerator};
///
/// let gen = TraceGenerator::new(TraceConfig { seed: 7, ..Default::default() }).unwrap();
/// let jobs = gen.generate();
/// assert_eq!(jobs.len(), 160);                       // the paper's workload size
/// assert!(jobs.windows(2).all(|w| w[0].submit_time <= w[1].submit_time));
/// // Same seed, same trace.
/// assert_eq!(jobs, gen.generate());
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceConfig,
}

impl TraceGenerator {
    /// Creates a generator. Returns `None` for degenerate configs.
    pub fn new(config: TraceConfig) -> Option<Self> {
        if config.num_jobs == 0
            || config.duration_hours <= 0.0
            || config.load_multiplier <= 0.0
            || config.max_gpus == 0
            || config.gpus_per_node == 0
        {
            None
        } else {
            Some(Self { config })
        }
    }

    /// The effective number of jobs after the load multiplier.
    pub fn effective_num_jobs(&self) -> usize {
        ((self.config.num_jobs as f64 * self.config.load_multiplier).round() as usize).max(1)
    }

    /// Generates the full trace, sorted by submission time.
    pub fn generate(&self) -> Vec<JobSpec> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n = self.effective_num_jobs();
        let total_weight: f64 = HOURLY_WEIGHTS.iter().sum();
        let window = self.config.duration_hours * 3600.0;
        let hour_len = window / HOURLY_WEIGHTS.len() as f64;
        let work_dist = LogNormal::new(0.0, self.config.work_sigma.max(1e-9))
            .expect("sigma > 0 enforced above");

        let mut jobs: Vec<JobSpec> = (0..n)
            .map(|i| {
                // Submission hour by the diurnal weights, uniform within.
                // Falls back to the *last* hour on floating-point
                // exhaustion, not hour 0 (which has the lowest weight).
                let mut pick = rng.gen_range(0.0..total_weight);
                let mut hour = HOURLY_WEIGHTS.len() - 1;
                for (h, &w) in HOURLY_WEIGHTS.iter().enumerate() {
                    if pick < w {
                        hour = h;
                        break;
                    }
                    pick -= w;
                }
                let submit_time = hour as f64 * hour_len + rng.gen_range(0.0..hour_len);

                // Model by category mix (same last-entry fallback).
                let mut pick = rng.gen_range(0.0..1.0);
                let mut kind = MODEL_MIX[MODEL_MIX.len() - 1].0;
                for &(k, f) in &MODEL_MIX {
                    if pick < f {
                        kind = k;
                        break;
                    }
                    pick -= f;
                }
                let profile = kind.profile();

                let scale = work_dist.sample(&mut rng).clamp(0.3, 3.0);
                let tuned = tuned_config(
                    &profile,
                    self.config.max_gpus,
                    self.config.gpus_per_node,
                    &mut rng,
                );
                let trace_gpus = sample_trace_gpus(profile.category, &mut rng);
                let realistic =
                    realistic_config(&profile, trace_gpus, self.config.gpus_per_node, &mut rng);

                JobSpec {
                    id: JobId(i as u32),
                    kind,
                    submit_time,
                    work: profile.total_work * scale,
                    tuned,
                    realistic,
                }
            })
            .collect();

        jobs.sort_by(|a, b| {
            a.submit_time
                .partial_cmp(&b.submit_time)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Re-number in submission order so JobId increases with time.
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = JobId(i as u32);
        }
        jobs
    }

    /// Histogram of submissions per hour (the Fig 6 series).
    pub fn hourly_counts(&self, jobs: &[JobSpec]) -> Vec<usize> {
        let hours = HOURLY_WEIGHTS.len();
        let hour_len = self.config.duration_hours * 3600.0 / hours as f64;
        let mut counts = vec![0usize; hours];
        for j in jobs {
            let h = ((j.submit_time / hour_len) as usize).min(hours - 1);
            counts[h] += 1;
        }
        counts
    }
}

/// Samples a user-requested GPU count per the Microsoft-trace
/// distributions. Philly users under-request heavily — most jobs,
/// including large ones, ask for one or two GPUs (Sec. 5.3.1: "many
/// users requested a small number of GPUs, when they could still have
/// efficiently utilized more — especially in the later stages of each
/// job").
fn sample_trace_gpus<R: Rng>(category: SizeCategory, rng: &mut R) -> u32 {
    let table: &[(u32, f64)] = match category {
        SizeCategory::Small => &[(1, 0.85), (2, 0.15)],
        SizeCategory::Medium => &[(1, 0.60), (2, 0.25), (4, 0.15)],
        SizeCategory::Large => &[(1, 0.30), (2, 0.35), (4, 0.25), (8, 0.10)],
        SizeCategory::XLarge => &[(2, 0.25), (4, 0.40), (8, 0.25), (16, 0.10)],
    };
    let mut pick = rng.gen_range(0.0..1.0);
    for &(g, f) in table {
        if pick < f {
            return g;
        }
        pick -= f;
    }
    table.last().expect("tables are non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn generator(seed: u64) -> TraceGenerator {
        TraceGenerator::new(TraceConfig {
            seed,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(TraceGenerator::new(TraceConfig {
            num_jobs: 0,
            ..Default::default()
        })
        .is_none());
        assert!(TraceGenerator::new(TraceConfig {
            duration_hours: 0.0,
            ..Default::default()
        })
        .is_none());
        assert!(TraceGenerator::new(TraceConfig {
            load_multiplier: 0.0,
            ..Default::default()
        })
        .is_none());
        assert!(TraceGenerator::new(TraceConfig::default()).is_some());
    }

    #[test]
    fn generates_requested_count_sorted() {
        let g = generator(1);
        let jobs = g.generate();
        assert_eq!(jobs.len(), 160);
        for w in jobs.windows(2) {
            assert!(w[0].submit_time <= w[1].submit_time);
        }
        // Ids follow submission order.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u32));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generator(7).generate(), generator(7).generate());
        assert_ne!(generator(7).generate(), generator(8).generate());
    }

    #[test]
    fn submission_times_inside_window() {
        let jobs = generator(2).generate();
        for j in &jobs {
            assert!(j.submit_time >= 0.0 && j.submit_time < 8.0 * 3600.0);
        }
    }

    #[test]
    fn category_mix_approximately_matches() {
        // Aggregate across several seeds for a tight estimate.
        let mut counts: HashMap<ModelKind, usize> = HashMap::new();
        let mut total = 0usize;
        for seed in 0..8 {
            for j in generator(seed).generate() {
                *counts.entry(j.kind).or_default() += 1;
                total += 1;
            }
        }
        let frac = |k: ModelKind| *counts.get(&k).unwrap_or(&0) as f64 / total as f64;
        assert!((frac(ModelKind::ResNet18Cifar10) - 0.38).abs() < 0.06);
        assert!((frac(ModelKind::NeuMFMovieLens) - 0.38).abs() < 0.06);
        assert!((frac(ModelKind::DeepSpeech2Arctic) - 0.17).abs() < 0.05);
        assert!((frac(ModelKind::Yolov3Voc) - 0.05).abs() < 0.03);
        assert!((frac(ModelKind::ResNet50ImageNet) - 0.02).abs() < 0.02);
    }

    #[test]
    fn diurnal_peak_in_fourth_hour() {
        // Aggregate over seeds; the 4th hour (index 3) must be the
        // modal submission hour and ~3x the first hour.
        let mut totals = vec![0usize; 8];
        for seed in 0..16 {
            let g = generator(seed);
            let jobs = g.generate();
            for (h, c) in g.hourly_counts(&jobs).iter().enumerate() {
                totals[h] += c;
            }
        }
        let max_hour = totals
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .unwrap()
            .0;
        assert_eq!(max_hour, 3, "histogram: {totals:?}");
        let ratio = totals[3] as f64 / totals[0] as f64;
        assert!((2.0..4.5).contains(&ratio), "peak ratio = {ratio:.2}");
    }

    #[test]
    fn load_multiplier_scales_job_count() {
        let half = TraceGenerator::new(TraceConfig {
            load_multiplier: 0.5,
            ..Default::default()
        })
        .unwrap();
        let double = TraceGenerator::new(TraceConfig {
            load_multiplier: 2.0,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(half.effective_num_jobs(), 80);
        assert_eq!(double.effective_num_jobs(), 320);
        assert_eq!(half.generate().len(), 80);
        assert_eq!(double.generate().len(), 320);
    }

    #[test]
    fn work_sizes_are_scaled_around_profile() {
        let jobs = generator(3).generate();
        for j in &jobs {
            let base = j.kind.profile().total_work;
            assert!(j.work >= base * 0.3 - 1e-9 && j.work <= base * 3.0 + 1e-9);
        }
    }

    #[test]
    fn user_gpu_requests_match_category_skew() {
        let mut small_gpus = Vec::new();
        let mut xlarge_gpus = Vec::new();
        for seed in 0..8 {
            for j in generator(seed).generate() {
                match j.kind.profile().category {
                    SizeCategory::Small => small_gpus.push(j.realistic.gpus),
                    SizeCategory::XLarge => xlarge_gpus.push(j.realistic.gpus),
                    _ => {}
                }
            }
        }
        let avg = |v: &[u32]| v.iter().sum::<u32>() as f64 / v.len().max(1) as f64;
        assert!(avg(&small_gpus) < 2.0, "small avg = {}", avg(&small_gpus));
        assert!(
            avg(&xlarge_gpus) > 4.0,
            "xlarge avg = {}",
            avg(&xlarge_gpus)
        );
    }
}
