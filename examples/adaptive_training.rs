//! Job-level adaptation on real gradients: measure the gradient noise
//! scale while training, scale the learning rate with AdaScale, and
//! check Eqn 7's efficiency prediction against reality.
//!
//! Statistical efficiency is an *instantaneous* quantity — φ_t changes
//! over training — so the comparison follows the paper's Fig 2b
//! methodology: train to a fixed checkpoint, measure φ̂ there, then
//! descend a fixed loss interval from that same checkpoint at every
//! batch size and compare examples consumed.
//!
//! ```sh
//! cargo run --release --example adaptive_training
//! ```

use pollux::models::EfficiencyModel;
use pollux::trainer::{AdaptiveTrainer, Dataset, LinearModel, TrainerConfig};

fn main() {
    let m0 = 32u64;
    let checkpoint_loss = 0.5;
    let target_loss = 0.3;

    // 1. Train the reference model to the checkpoint at m0.
    let data = Dataset::linear_regression(4000, 8, 0.5, 99)
        .expect("valid dataset parameters")
        .0;
    let mut reference = AdaptiveTrainer::new(
        LinearModel::new(8),
        data,
        TrainerConfig {
            replicas: 4,
            batch_size: m0,
            m0,
            eta0: 0.04,
            gns_smoothing: 0.05,
            use_adascale: true,
            momentum: 0.0,
            seed: 1,
        },
    )
    .expect("valid trainer config");
    reference
        .train_until_loss(checkpoint_loss, 400_000, 5)
        .expect("checkpoint reachable");
    println!(
        "checkpoint: loss {checkpoint_loss} after {} steps ({} examples)",
        reference.steps(),
        reference.total_examples()
    );

    // 2. Measure the gradient noise scale at the frozen checkpoint.
    let phi = {
        let mut probe = reference.clone();
        probe
            .measure_phi_static(400, 128)
            .expect("estimates available")
            .max(0.0)
    };
    println!("measured gradient noise scale at checkpoint: φ ≈ {phi:.1} examples");
    let eff_model = EfficiencyModel::from_noise_scale(m0, phi).expect("phi >= 0");

    // 3. Descend checkpoint → target at each batch size with AdaScale.
    let examples_to_target = |m: u64| -> Option<(u64, f64)> {
        let mut t = reference.clone();
        assert!(t.set_batch_size(m), "batch below replica count");
        let before = t.total_examples();
        let (_, ex) = t.train_until_loss(target_loss, 400_000, 5)?;
        let last = t.step();
        Some((ex - before, last.lr))
    };
    let (base_examples, _) = examples_to_target(m0).expect("m0 descent converges");
    println!("reference descent ({checkpoint_loss} → {target_loss}): {base_examples} examples\n");

    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>10}",
        "batch", "predicted", "examples", "actual", "lr"
    );
    for batch in [64u64, 128, 256, 512] {
        match examples_to_target(batch) {
            Some((ex, lr)) => {
                let actual = base_examples as f64 / ex as f64;
                let predicted = eff_model.efficiency(batch);
                println!(
                    "{:<8} {:>10.3} {:>12} {:>10.3} {:>10.4}",
                    batch, predicted, ex, actual, lr
                );
            }
            None => println!("{batch:<8} did not converge in budget"),
        }
    }
    println!(
        "\nEqn 7: EFFICIENCY(m) = (φ + m0) / (φ + m); AdaScale sets η = r_t·η0, so one \
         batch-m step makes r_t iterations' worth of progress."
    );
}
