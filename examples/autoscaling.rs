//! Cloud auto-scaling for one large training job: goodput-driven
//! (Pollux) vs throughput-driven (Or et al.) provisioning — the
//! paper's Fig 10 scenario at reduced scale.
//!
//! ```sh
//! cargo run --release --example autoscaling
//! ```

use pollux::experiments::fig10;

fn main() {
    // A quarter-size ImageNet job keeps the example fast; pass 1.0 in
    // fig10::run for the full-size experiment.
    let result = fig10::run(0.15, 16);
    println!("{result}");

    println!();
    println!(
        "Pollux provisions few nodes while the gradient noise scale is low (large batches \
         would be statistically wasteful), then scales out as training progresses; the \
         throughput-based autoscaler jumps to a large flat cluster immediately and pays \
         for GPUs that contribute little statistical progress early on."
    );
}
