//! Compare Pollux against the baseline schedulers (Tiresias,
//! Optimus+Oracle) on the same workload — a small-scale version of the
//! paper's Table 2.
//!
//! ```sh
//! cargo run --release --example cluster_scheduling
//! ```

use pollux::baselines::{optimus, tiresias, TiresiasConfig};
use pollux::cluster::ClusterSpec;
use pollux::core::{run_trace, ConfigChoice, PolluxConfig, PolluxPolicy};
use pollux::sched::GaConfig;
use pollux::simulator::{SchedulingPolicy, SimConfig, SimResult};
use pollux::workload::{JobSpec, TraceConfig, TraceGenerator};

fn workload() -> Vec<JobSpec> {
    TraceGenerator::new(TraceConfig {
        num_jobs: 60,
        duration_hours: 4.0,
        seed: 11,
        ..Default::default()
    })
    .expect("valid trace config")
    .generate()
}

fn simulate(policy: Box<dyn SchedulingPolicy>, trace: &[JobSpec]) -> SimResult {
    let cluster = ClusterSpec::homogeneous(8, 4).expect("valid cluster");
    let sim = SimConfig {
        max_sim_time: 48.0 * 3600.0,
        seed: 11,
        ..Default::default()
    };
    run_trace(policy, trace, ConfigChoice::Tuned, cluster, sim).expect("valid inputs")
}

fn main() {
    let trace = workload();
    println!(
        "workload: {} jobs over 4 h on 8 nodes x 4 GPUs (ideally tuned configs)\n",
        trace.len()
    );

    let mut pollux_cfg = PolluxConfig::default();
    pollux_cfg.sched.ga = GaConfig {
        population: 32,
        generations: 15,
        ..Default::default()
    };
    let policies: Vec<Box<dyn SchedulingPolicy>> = vec![
        Box::new(PolluxPolicy::new(pollux_cfg).expect("valid config")),
        Box::new(optimus(4)),
        Box::new(tiresias(TiresiasConfig::default())),
    ];

    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>10} {:>11}",
        "policy", "avg JCT (h)", "p99 JCT (h)", "makespan (h)", "eff (%)", "unfinished"
    );
    let mut rows = Vec::new();
    for policy in policies {
        let name = policy.name();
        let res = simulate(policy, &trace);
        println!(
            "{:<16} {:>12.2} {:>12.2} {:>12.2} {:>10.1} {:>11}",
            name,
            res.avg_jct().unwrap_or(0.0) / 3600.0,
            res.percentile_jct(99.0).unwrap_or(0.0) / 3600.0,
            res.makespan() / 3600.0,
            res.avg_cluster_efficiency().unwrap_or(0.0) * 100.0,
            res.unfinished(),
        );
        rows.push((name, res.avg_jct().unwrap_or(f64::INFINITY)));
    }

    if let Some(pollux) = rows.iter().find(|(n, _)| *n == "pollux") {
        println!();
        for (name, jct) in &rows {
            if name != &"pollux" && jct.is_finite() && *jct > 0.0 {
                println!(
                    "Pollux reduces average JCT by {:.0}% vs {}",
                    (1.0 - pollux.1 / jct) * 100.0,
                    name
                );
            }
        }
    }
}
