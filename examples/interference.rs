//! Network-interference avoidance (the paper's Fig 9 scenario):
//! distributed jobs sharing a node contend for the network; Pollux's
//! scheduler simply never produces such placements.
//!
//! ```sh
//! cargo run --release --example interference
//! ```

use pollux::cluster::ClusterSpec;
use pollux::core::{run_trace, ConfigChoice, PolluxConfig, PolluxPolicy};
use pollux::sched::GaConfig;
use pollux::simulator::SimConfig;
use pollux::workload::{TraceConfig, TraceGenerator};

fn run(slowdown: f64, avoidance: bool) -> (f64, u32) {
    let trace = TraceGenerator::new(TraceConfig {
        num_jobs: 40,
        duration_hours: 2.0,
        seed: 5,
        ..Default::default()
    })
    .expect("valid trace config")
    .generate();
    let mut config = PolluxConfig::default();
    config.sched.ga = GaConfig {
        population: 32,
        generations: 15,
        interference_avoidance: avoidance,
        ..Default::default()
    };
    let policy = PolluxPolicy::new(config).expect("valid policy config");
    let sim = SimConfig {
        interference_slowdown: slowdown,
        max_sim_time: 48.0 * 3600.0,
        seed: 5,
        ..Default::default()
    };
    let res = run_trace(
        policy,
        &trace,
        ConfigChoice::Tuned,
        ClusterSpec::homogeneous(8, 4).expect("valid cluster"),
        sim,
    )
    .expect("valid inputs");
    let restarts = res.records.iter().map(|r| r.num_restarts).sum();
    (res.avg_jct().unwrap_or(0.0) / 3600.0, restarts)
}

fn main() {
    println!("40 jobs on 8 nodes x 4 GPUs; distributed jobs sharing a node are slowed\n");
    println!(
        "{:<10} {:>20} {:>20}",
        "slowdown", "avoidance ON (h)", "avoidance OFF (h)"
    );
    for slowdown in [0.0, 0.25, 0.5] {
        let (on, _) = run(slowdown, true);
        let (off, _) = run(slowdown, false);
        println!(
            "{:<10} {:>20.2} {:>17.2} ({:+.0}%)",
            format!("{:.0}%", slowdown * 100.0),
            on,
            off,
            (off / on - 1.0) * 100.0
        );
    }
    println!(
        "\nWith avoidance enabled, JCT is flat across slowdowns because the constraint is\n\
         enforced during the genetic algorithm's repair step — conflicting placements never\n\
         reach the cluster. At zero slowdown the two variants differ only by scheduling\n\
         noise (a few percent); the constraint costs essentially nothing (paper Fig 9)."
    );
}
