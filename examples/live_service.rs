//! Embed Pollux as a live control plane: a background scheduler thread
//! re-optimizes GPU allocations while training code reports
//! measurements through per-job handles — the paper's deployment shape
//! (PolluxSched service + PolluxAgent library, Sec. 4.3).
//!
//! ```sh
//! cargo run --release --example live_service
//! ```

use pollux::cluster::ClusterSpec;
use pollux::core::{ClusterService, PolluxConfig, ServiceConfig};
use pollux::models::{GradientStats, PlacementShape};
use pollux::sched::GaConfig;
use pollux::workload::ModelKind;
use std::time::Duration;

fn main() {
    // A 4-node x 4-GPU cluster with a 50 ms scheduling interval (60 s
    // in production; shortened so the demo finishes instantly).
    let mut pollux = PolluxConfig::default();
    pollux.sched.ga = GaConfig {
        population: 32,
        generations: 15,
        ..Default::default()
    };
    let service = ClusterService::start(
        ServiceConfig {
            pollux,
            interval: Duration::from_millis(50),
            seed: 7,
            ..Default::default()
        },
        ClusterSpec::homogeneous(4, 4).expect("valid cluster"),
    )
    .expect("valid service config");

    // Submit two jobs: a scalable ResNet18 and a sync-heavy DeepSpeech2.
    let resnet = ModelKind::ResNet18Cifar10.profile();
    let speech = ModelKind::DeepSpeech2Arctic.profile();
    let h_resnet = service
        .submit(resnet.m0, resnet.eta0, resnet.limits)
        .expect("valid job");
    let h_speech = service
        .submit(speech.m0, speech.eta0, speech.limits)
        .expect("valid job");
    println!("submitted {} and {}", h_resnet.id(), h_speech.id());

    // Fresh jobs get bootstrap allocations (1-2 GPUs).
    service.wait_for_rounds(2, Duration::from_secs(30));
    println!("bootstrap placements:");
    println!(
        "  resnet: {:?} ({:?})",
        h_resnet.placement(),
        h_resnet.state()
    );
    println!(
        "  speech: {:?} ({:?})",
        h_speech.placement(),
        h_speech.state()
    );

    // Training code reports profiled iterations + gradient statistics
    // (here generated from the ground-truth profiles).
    for (handle, profile, phi) in [(&h_resnet, &resnet, 3000.0), (&h_speech, &speech, 60.0)] {
        for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (8, 2)] {
            let shape = PlacementShape::new(g, n).expect("valid shape");
            handle.record_iteration(shape, profile.m0, profile.params.t_iter(shape, profile.m0));
        }
        handle.refit();
        handle.record_gradient_stats(
            GradientStats::new(phi / profile.m0 as f64, 1.0).expect("valid stats"),
        );
    }

    // The next rounds use the reported goodput models: the scalable
    // job grows; both get tuned batch sizes and learning rates.
    let r = service.rounds();
    service.trigger_schedule().expect("service running");
    service.wait_for_rounds(r + 3, Duration::from_secs(30));

    println!("\nafter agent reports:");
    for (name, handle) in [("resnet", &h_resnet), ("speech", &h_speech)] {
        let placement = handle.placement();
        let gpus: u32 = placement.iter().sum();
        match handle.tuning() {
            Some(t) => println!(
                "  {name}: {gpus} GPUs {placement:?}  m* = {}  lr = {:.4}  gain = {:.2}",
                t.batch_size, t.learning_rate, t.gain
            ),
            None => println!("  {name}: {gpus} GPUs {placement:?}  (no tuning yet)"),
        }
    }

    // Completing a job frees its GPUs at the next round.
    service.complete(h_speech.id());
    let r = service.rounds();
    service.trigger_schedule().expect("service running");
    service.wait_for_rounds(r + 2, Duration::from_secs(30));
    let gpus: u32 = h_resnet.placement().iter().sum();
    println!("\nafter speech completes, resnet holds {gpus} GPUs");

    service.shutdown();
    println!("service shut down cleanly");
}
