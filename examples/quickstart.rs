//! Quickstart: schedule a handful of DL jobs on a small GPU cluster
//! with Pollux and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pollux::cluster::ClusterSpec;
use pollux::core::{run_trace, ConfigChoice, PolluxConfig, PolluxPolicy};
use pollux::sched::GaConfig;
use pollux::simulator::SimConfig;
use pollux::workload::{TraceConfig, TraceGenerator};

fn main() {
    // 1. A workload: 24 jobs sampled with the paper's category mix
    //    (mostly small ResNet18/NeuMF jobs, a few larger ones),
    //    submitted over a 2-hour window.
    let trace = TraceGenerator::new(TraceConfig {
        num_jobs: 24,
        duration_hours: 2.0,
        seed: 7,
        ..Default::default()
    })
    .expect("valid trace config")
    .generate();
    println!("workload: {} jobs", trace.len());
    for job in trace.iter().take(5) {
        println!(
            "  {} {:<24} submit {:>5.0}s  work {:.1e}",
            job.id,
            job.kind.profile().name,
            job.submit_time,
            job.work
        );
    }
    println!("  ...");

    // 2. A cluster: 4 nodes x 4 GPUs.
    let cluster = ClusterSpec::homogeneous(4, 4).expect("valid cluster");

    // 3. The Pollux policy: co-adaptive goodput-driven scheduling.
    let mut config = PolluxConfig::default();
    config.sched.ga = GaConfig {
        population: 32,
        generations: 15,
        ..Default::default()
    };
    let policy = PolluxPolicy::new(config).expect("valid policy config");

    // 4. Simulate.
    let sim = SimConfig {
        max_sim_time: 24.0 * 3600.0,
        seed: 7,
        ..Default::default()
    };
    let result =
        run_trace(policy, &trace, ConfigChoice::Tuned, cluster, sim).expect("valid inputs");

    // 5. Report.
    println!("\nresults ({} jobs):", result.records.len());
    println!(
        "  average JCT     : {:.2} h",
        result.avg_jct().unwrap_or(0.0) / 3600.0
    );
    println!(
        "  99th pct JCT    : {:.2} h",
        result.percentile_jct(99.0).unwrap_or(0.0) / 3600.0
    );
    println!("  makespan        : {:.2} h", result.makespan() / 3600.0);
    println!(
        "  stat. efficiency: {:.1} %",
        result.avg_cluster_efficiency().unwrap_or(0.0) * 100.0
    );
    println!("  unfinished      : {}", result.unfinished());

    let restarts: u32 = result.records.iter().map(|r| r.num_restarts).sum();
    println!("  total restarts  : {restarts}");
}
