//! Umbrella crate re-exporting the entire Pollux workspace.
//!
//! See the individual crates for detailed documentation:
//! [`pollux_core`], [`pollux_models`], [`pollux_sched`], [`pollux_agent`],
//! [`pollux_control`], [`pollux_simulator`], [`pollux_workload`],
//! [`pollux_baselines`], [`pollux_trainer`], [`pollux_experiments`],
//! [`pollux_opt`], [`pollux_cluster`].

pub use pollux_agent as agent;
pub use pollux_baselines as baselines;
pub use pollux_cluster as cluster;
pub use pollux_control as control;
pub use pollux_core as core;
pub use pollux_experiments as experiments;
pub use pollux_models as models;
pub use pollux_opt as opt;
pub use pollux_sched as sched;
pub use pollux_simulator as simulator;
pub use pollux_trainer as trainer;
pub use pollux_workload as workload;
