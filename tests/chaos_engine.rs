//! Chaos testing: a policy that emits random (often infeasible)
//! allocation matrices every interval. The engine must defensively
//! clamp them and keep every invariant intact.

use pollux::cluster::{AllocationMatrix, ClusterSpec};
use pollux::simulator::{
    metrics::EventKind, PolicyJobView, SchedulingPolicy, SimConfig, Simulation,
};
use pollux::workload::{ModelKind, TraceConfig, TraceGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Emits uniformly random matrices, ignoring capacities entirely.
struct ChaosPolicy {
    max_gpus_per_cell: u32,
    rng: StdRng,
}

impl SchedulingPolicy for ChaosPolicy {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn schedule(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> AllocationMatrix {
        let mut m = AllocationMatrix::zeros(jobs.len(), spec.num_nodes());
        for j in 0..jobs.len() {
            for n in 0..spec.num_nodes() {
                m.set(j, n, self.rng.gen_range(0..=self.max_gpus_per_cell));
            }
        }
        m
    }
}

fn run_chaos(seed: u64, max_cell: u32, jobs: usize) -> pollux::simulator::SimResult {
    let trace: Vec<_> = TraceGenerator::new(TraceConfig {
        num_jobs: 40,
        duration_hours: 1.0,
        seed,
        ..Default::default()
    })
    .unwrap()
    .generate()
    .into_iter()
    .filter(|j| {
        matches!(
            j.kind,
            ModelKind::ResNet18Cifar10 | ModelKind::NeuMFMovieLens
        )
    })
    .take(jobs)
    .map(|j| {
        let user = j.tuned;
        (j, user)
    })
    .collect();
    let sim = SimConfig {
        max_sim_time: 6.0 * 3600.0,
        seed,
        ..Default::default()
    };
    let policy = ChaosPolicy {
        max_gpus_per_cell: max_cell,
        rng: StdRng::seed_from_u64(seed ^ 0xC0FFEE),
    };
    Simulation::new(sim, ClusterSpec::homogeneous(3, 4).unwrap(), policy, trace)
        .unwrap()
        .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn chaos_policy_cannot_break_engine_invariants(
        seed in 0u64..1000,
        max_cell in 1u32..12,
        jobs in 2usize..6,
    ) {
        let res = run_chaos(seed, max_cell, jobs);

        // The cluster is never oversubscribed, no matter what the
        // policy asked for.
        for s in &res.series {
            prop_assert!(s.used_gpus <= s.total_gpus, "{s:?}");
            prop_assert!(s.mean_efficiency >= 0.0 && s.mean_efficiency <= 1.0 + 1e-9);
        }

        // Per-job accounting stays sane.
        for r in &res.records {
            prop_assert!(r.gputime >= 0.0);
            prop_assert!(r.useful_examples <= r.examples_processed * (1.0 + 1e-9));
            if let (Some(start), Some(finish)) = (r.start_time, r.finish_time) {
                prop_assert!(start <= finish);
                prop_assert!(start >= r.submit_time);
            }
        }

        // Events are ordered and structurally consistent.
        for w in res.events.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        for r in &res.records {
            let started = res
                .events
                .iter()
                .filter(|e| e.job == r.id && e.kind == EventKind::Started)
                .count();
            prop_assert!(started <= 1, "job {} started {started} times", r.id);
        }
    }
}
