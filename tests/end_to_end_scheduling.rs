//! End-to-end integration tests: workload generation → simulation →
//! the Pollux policy and baselines, across crate boundaries.

use pollux::baselines::{tiresias, TiresiasConfig};
use pollux::cluster::ClusterSpec;
use pollux::core::{run_trace, ConfigChoice, PolluxConfig, PolluxPolicy};
use pollux::sched::GaConfig;
use pollux::simulator::SimConfig;
use pollux::workload::{JobSpec, ModelKind, TraceConfig, TraceGenerator};

fn small_trace(num_jobs: usize, seed: u64) -> Vec<JobSpec> {
    TraceGenerator::new(TraceConfig {
        num_jobs,
        duration_hours: 1.0,
        seed,
        ..Default::default()
    })
    .unwrap()
    .generate()
    .into_iter()
    .filter(|j| {
        matches!(
            j.kind,
            ModelKind::ResNet18Cifar10 | ModelKind::NeuMFMovieLens
        )
    })
    .collect()
}

fn quick_pollux() -> PolluxPolicy {
    let mut c = PolluxConfig::default();
    c.sched.ga = GaConfig {
        population: 16,
        generations: 8,
        ..Default::default()
    };
    PolluxPolicy::new(c).unwrap()
}

fn quick_sim(seed: u64) -> SimConfig {
    SimConfig {
        max_sim_time: 16.0 * 3600.0,
        seed,
        ..Default::default()
    }
}

#[test]
fn pollux_finishes_small_workload_and_respects_invariants() {
    let trace = small_trace(10, 21);
    assert!(trace.len() >= 5, "trace too small: {}", trace.len());
    let spec = ClusterSpec::homogeneous(4, 4).unwrap();
    let res = run_trace(
        quick_pollux(),
        &trace,
        ConfigChoice::Tuned,
        spec,
        quick_sim(1),
    )
    .unwrap();

    assert_eq!(res.records.len(), trace.len());
    assert_eq!(res.unfinished(), 0);
    for r in &res.records {
        let jct = r.jct().expect("all jobs finish");
        assert!(jct > 0.0);
        // A job can't finish before it was submitted + some work.
        assert!(r.finish_time.unwrap() > r.submit_time);
        assert!(r.start_time.unwrap() >= r.submit_time);
        assert!(r.gputime > 0.0);
        // Useful examples never exceed raw examples processed.
        assert!(r.useful_examples <= r.examples_processed * (1.0 + 1e-9));
    }
    // The series never oversubscribes the cluster.
    for s in &res.series {
        assert!(s.used_gpus <= s.total_gpus);
    }
}

#[test]
fn pollux_beats_tiresias_on_scalable_workload() {
    // Medium-sized workload of scalable small jobs: Pollux should show
    // a clear advantage in average JCT over the non-adaptive baseline.
    let trace = small_trace(16, 33);
    let spec = ClusterSpec::homogeneous(4, 4).unwrap();
    let pollux = run_trace(
        quick_pollux(),
        &trace,
        ConfigChoice::Tuned,
        spec.clone(),
        quick_sim(2),
    )
    .unwrap();
    let tiresias = run_trace(
        tiresias(TiresiasConfig::default()),
        &trace,
        ConfigChoice::Tuned,
        spec,
        quick_sim(2),
    )
    .unwrap();
    assert_eq!(pollux.unfinished(), 0);
    assert_eq!(tiresias.unfinished(), 0);
    let pj = pollux.avg_jct().unwrap();
    let tj = tiresias.avg_jct().unwrap();
    assert!(
        pj < tj * 1.05,
        "pollux {:.2}h should not lose to tiresias {:.2}h",
        pj / 3600.0,
        tj / 3600.0
    );
}

#[test]
fn pollux_is_robust_to_user_misconfiguration() {
    // The Fig 7 property: realistic (poor) user configs should barely
    // change Pollux's outcome, because it ignores them.
    let trace = small_trace(12, 44);
    let spec = ClusterSpec::homogeneous(4, 4).unwrap();
    let tuned = run_trace(
        quick_pollux(),
        &trace,
        ConfigChoice::Tuned,
        spec.clone(),
        quick_sim(3),
    )
    .unwrap();
    let realistic = run_trace(
        quick_pollux(),
        &trace,
        ConfigChoice::Realistic,
        spec,
        quick_sim(3),
    )
    .unwrap();
    let a = tuned.avg_jct().unwrap();
    let b = realistic.avg_jct().unwrap();
    let ratio = b / a;
    assert!(
        (0.7..1.3).contains(&ratio),
        "pollux JCT changed {ratio:.2}x with user configs"
    );
}

#[test]
fn restarts_stay_bounded() {
    // The restart penalty must prevent continual reshuffling: on a
    // stable workload, jobs should restart only a handful of times.
    let trace = small_trace(8, 55);
    let spec = ClusterSpec::homogeneous(4, 4).unwrap();
    let res = run_trace(
        quick_pollux(),
        &trace,
        ConfigChoice::Tuned,
        spec,
        quick_sim(4),
    )
    .unwrap();
    for r in &res.records {
        let jct_hours = r.jct().unwrap() / 3600.0;
        // Allow generous slack: a few restarts per job-hour, plus a
        // base that tolerates reallocations forced by arrivals and
        // departures of the other jobs (with a 60 s interval, a short
        // job sees its whole queue turn over within a handful of
        // rounds). Unbounded churn would blow well past this.
        let budget = 6.0 + 8.0 * jct_hours;
        assert!(
            (r.num_restarts as f64) <= budget,
            "job {} restarted {} times in {:.2}h",
            r.id,
            r.num_restarts,
            jct_hours
        );
    }
}

#[test]
fn event_timeline_is_consistent() {
    use pollux::simulator::metrics::EventKind;
    use std::collections::HashMap;

    let trace = small_trace(8, 77);
    let spec = ClusterSpec::homogeneous(4, 4).unwrap();
    let res = run_trace(
        quick_pollux(),
        &trace,
        ConfigChoice::Tuned,
        spec,
        quick_sim(6),
    )
    .unwrap();
    assert!(!res.events.is_empty());

    // Events are time-ordered.
    for w in res.events.windows(2) {
        assert!(w[0].time <= w[1].time);
    }

    let mut per_job: HashMap<_, Vec<_>> = HashMap::new();
    for e in &res.events {
        per_job.entry(e.job).or_default().push(*e);
    }
    for r in &res.records {
        let events = per_job.get(&r.id).expect("every job has events");
        // Exactly one Started, as the first event; exactly one Finished,
        // as the last.
        assert_eq!(events.first().unwrap().kind, EventKind::Started);
        assert_eq!(events.last().unwrap().kind, EventKind::Finished);
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind == EventKind::Started)
                .count(),
            1
        );
        // The restart count matches the record.
        let restarts = events
            .iter()
            .filter(|e| e.kind == EventKind::Restarted)
            .count() as u32;
        assert_eq!(restarts, r.num_restarts, "job {}", r.id);
        // Timestamps line up with the record.
        assert_eq!(events.first().unwrap().time, r.start_time.unwrap());
        assert_eq!(events.last().unwrap().time, r.finish_time.unwrap());
    }
}

#[test]
fn deterministic_given_seeds() {
    let trace = small_trace(6, 66);
    let spec = ClusterSpec::homogeneous(2, 4).unwrap();
    let a = run_trace(
        quick_pollux(),
        &trace,
        ConfigChoice::Tuned,
        spec.clone(),
        quick_sim(5),
    )
    .unwrap();
    let b = run_trace(
        quick_pollux(),
        &trace,
        ConfigChoice::Tuned,
        spec,
        quick_sim(5),
    )
    .unwrap();
    assert_eq!(a.jcts(), b.jcts());
    assert_eq!(a.node_seconds, b.node_seconds);
}
