//! Integration tests of the goodput stack: profiles → agent → models →
//! scheduler, without the simulation engine.

use pollux::agent::PolluxAgent;
use pollux::cluster::{ClusterSpec, JobId};
use pollux::models::{GradientStats, PlacementShape};
use pollux::sched::{GaConfig, GeneticAlgorithm, SchedJob, SpeedupCache, SpeedupTable};
use pollux::workload::ModelKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trains an agent on noiseless observations of a model profile and
/// returns it.
fn learned_agent(kind: ModelKind, phi: f64) -> PolluxAgent {
    let profile = kind.profile();
    let mut agent = PolluxAgent::new(profile.m0, profile.eta0, profile.limits).unwrap();
    for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (4, 2), (8, 2), (16, 4)] {
        let shape = PlacementShape::new(g, n).unwrap();
        for mult in [1u64, 2, 4, 8] {
            let m = profile.m0 * mult;
            if profile
                .limits
                .range(shape)
                .is_some_and(|(lo, hi)| m >= lo && m <= hi)
            {
                agent.observe_iteration(shape, m, profile.params.t_iter(shape, m));
            }
        }
    }
    assert!(agent.refit(), "fit must succeed with observations");
    agent.observe_gradient_stats(GradientStats::new(phi / profile.m0 as f64, 1.0).unwrap());
    agent
}

#[test]
fn agent_report_predicts_profile_throughput() {
    for kind in [ModelKind::ResNet18Cifar10, ModelKind::ResNet50ImageNet] {
        let profile = kind.profile();
        let agent = learned_agent(kind, 1000.0);
        let report = agent.report().unwrap();
        for (g, n, mult) in [(2u32, 1u32, 2u64), (8, 2, 4), (16, 4, 8)] {
            let shape = PlacementShape::new(g, n).unwrap();
            let m = profile.m0 * mult;
            if profile
                .limits
                .range(shape)
                .is_none_or(|(lo, hi)| m < lo || m > hi)
            {
                continue;
            }
            let predicted = report.model.throughput.throughput(shape, m);
            let truth = profile.params.throughput(shape, m);
            let rel = (predicted - truth).abs() / truth;
            assert!(
                rel < 0.2,
                "{}: ({g},{n},{m}) predicted {predicted:.0} vs true {truth:.0}",
                profile.name
            );
        }
    }
}

#[test]
fn tuned_batch_grows_through_training() {
    // As training progresses (phi grows per the profile), the agent's
    // optimal batch size for a fixed allocation grows — the mechanism
    // behind Fig 1b and the auto-scaling behavior.
    let profile = ModelKind::ResNet50ImageNet.profile();
    let shape = PlacementShape::new(16, 4).unwrap();
    let mut batches = Vec::new();
    for progress in [0.05, 0.5, 0.95] {
        let agent = learned_agent(ModelKind::ResNet50ImageNet, profile.phi_at(progress));
        let d = agent.tune(shape).unwrap();
        batches.push(d.batch_size);
    }
    assert!(
        batches[0] < batches[1] && batches[1] <= batches[2],
        "batches should grow: {batches:?}"
    );
}

#[test]
fn scheduler_prefers_jobs_that_scale() {
    // Two learned jobs competing for one 8-GPU node: DeepSpeech2 has a
    // small noise scale and heavy sync (scales poorly); ResNet18 with
    // high phi scales well. The GA should give ResNet18 more GPUs.
    let resnet = learned_agent(ModelKind::ResNet18Cifar10, 4000.0);
    let speech = learned_agent(ModelKind::DeepSpeech2Arctic, 60.0);
    let jobs: Vec<SchedJob> = [(0u32, &resnet), (1u32, &speech)]
        .iter()
        .map(|(id, agent)| {
            let report = agent.report().unwrap();
            SchedJob {
                id: JobId(*id),
                model: report.model,
                min_gpus: report.min_gpus,
                gpu_cap: 64,
                weight: 1.0,
                current_placement: vec![],
            }
        })
        .collect();
    let spec = ClusterSpec::homogeneous(2, 4).unwrap();
    let ga = GeneticAlgorithm::new(GaConfig {
        population: 24,
        generations: 20,
        ..Default::default()
    });
    let table = SpeedupTable::build(&jobs, &spec, 1);
    let mut rng = StdRng::seed_from_u64(5);
    let out = ga.evolve(&jobs, &spec, vec![], &table, &mut rng);
    assert!(
        out.best.gpus_of(0) > out.best.gpus_of(1),
        "resnet {} vs speech {}\n{}",
        out.best.gpus_of(0),
        out.best.gpus_of(1),
        out.best
    );
    assert!(out.best.gpus_of(1) >= 1, "speech job must still run");
}

#[test]
fn speedup_canonicalization_matches_direct_model() {
    // The cache's (K, min(N,2)) canonicalization must agree with the
    // uncanonicalized model evaluation.
    let agent = learned_agent(ModelKind::ResNet18Cifar10, 2000.0);
    let report = agent.report().unwrap();
    let job = SchedJob {
        id: JobId(0),
        model: report.model,
        min_gpus: 1,
        gpu_cap: 64,
        weight: 1.0,
        current_placement: vec![],
    };
    let cache = SpeedupCache::new();
    for (g, n) in [(8u32, 2u32), (8, 4), (8, 8)] {
        let shape = PlacementShape::new(g, n).unwrap();
        let cached = cache.speedup(&job, shape);
        let direct = job.model.speedup(shape);
        assert!(
            (cached - direct).abs() < 1e-9,
            "({g},{n}): cached {cached} vs direct {direct}"
        );
    }
}

#[test]
fn prior_driven_exploration_expands_the_cap() {
    // Sec 4.1: a job starts on one GPU; its scale-out cap is twice the
    // largest allocation it has ever held, so repeated grant-observe-
    // refit rounds walk the cap up geometrically, and the optimistic
    // sync priors keep the predicted speedup attractive until real
    // multi-GPU data arrives.
    let profile = ModelKind::ResNet18Cifar10.profile();
    let mut agent = PolluxAgent::new(profile.m0, profile.eta0, profile.limits).unwrap();

    // Round 0: single-GPU observation only.
    let s1 = PlacementShape::single();
    agent.observe_iteration(s1, profile.m0, profile.params.t_iter(s1, profile.m0));
    assert!(agent.refit());
    agent.observe_gradient_stats(GradientStats::new(20.0, 1.0).unwrap());

    let mut caps = vec![agent.report().unwrap().gpu_cap];
    let mut granted = 1u32;
    for _ in 0..4 {
        // The scheduler grants the full cap; the agent observes there.
        let cap = agent.report().unwrap().gpu_cap;
        granted = cap;
        let nodes = granted.div_ceil(4).max(1);
        let shape = PlacementShape::new(granted, nodes.min(granted)).unwrap();
        agent.observe_iteration(shape, profile.m0, profile.params.t_iter(shape, profile.m0));
        assert!(agent.refit());
        caps.push(agent.report().unwrap().gpu_cap);
    }
    // Caps walked 2 -> 4 -> 8 -> 16 -> 32.
    assert_eq!(caps, vec![2, 4, 8, 16, 32], "cap trajectory: {caps:?}");
    assert!(granted >= 16);
}
