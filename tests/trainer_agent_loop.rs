//! Integration of the training substrate with the agent's adaptation
//! loop: real measured gradient statistics drive batch-size tuning.

use pollux::agent::PolluxAgent;
use pollux::models::{GradientStats, PlacementShape};
use pollux::trainer::{AdaptiveTrainer, Dataset, LinearModel, TrainerConfig};
use pollux::workload::ModelKind;

/// Runs the trainer for a while and returns its measured (variance,
/// |grad|²) statistics normalized to m0.
fn measured_stats(batch: u64, steps: usize) -> GradientStats {
    let data = Dataset::linear_regression(3000, 8, 0.6, 7).unwrap().0;
    let mut t = AdaptiveTrainer::new(
        LinearModel::new(8),
        data,
        TrainerConfig {
            replicas: 4,
            batch_size: batch,
            m0: 32,
            eta0: 0.03,
            gns_smoothing: 0.05,
            use_adascale: true,
            momentum: 0.0,
            seed: 9,
        },
    )
    .unwrap();
    for _ in 0..steps {
        t.step();
    }
    // Near convergence the measured φ legitimately diverges; clamp to
    // a large finite value for the agent handoff.
    let phi = t.phi().expect("phi available").min(1e9);
    GradientStats::new(phi / 32.0, 1.0).expect("phi >= 0")
}

#[test]
fn real_gradient_stats_drive_batch_tuning() {
    // Wire a trainer's *measured* noise scale into a PolluxAgent whose
    // throughput model comes from the ResNet18 profile (m0 = 128
    // scaled: use the trainer's m0 = 32 against a custom agent).
    let profile = ModelKind::ResNet18Cifar10.profile();
    let stats = measured_stats(128, 300);

    // Build an agent with matching m0 = 32 limits.
    let limits = pollux::models::BatchSizeLimits::new(32, 8192, 1024).unwrap();
    let mut agent = PolluxAgent::new(32, 0.05, limits).unwrap();
    for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (8, 2)] {
        let shape = PlacementShape::new(g, n).unwrap();
        for m in [32u64, 64, 128, 512] {
            agent.observe_iteration(shape, m, profile.params.t_iter(shape, m));
        }
    }
    assert!(agent.refit());
    agent.observe_gradient_stats(stats);

    let shape = PlacementShape::new(8, 2).unwrap();
    let d = agent.tune(shape).expect("tunable");
    // The measured phi is well above m0 = 32, so the agent should ask
    // for a batch above m0, with a learning rate scaled above eta0 but
    // below linear scaling.
    assert!(d.batch_size > 32, "m* = {}", d.batch_size);
    assert!(d.learning_rate >= 0.05);
    let linear = 0.05 * d.batch_size as f64 / 32.0;
    assert!(d.learning_rate <= linear * (1.0 + 1e-9));
}

#[test]
fn efficiency_prediction_consistency_between_crates() {
    // pollux-models' EfficiencyModel and the trainer's internal
    // efficiency snapshot must agree on the same phi.
    let data = Dataset::linear_regression(2000, 6, 0.5, 11).unwrap().0;
    let mut t = AdaptiveTrainer::new(
        LinearModel::new(6),
        data,
        TrainerConfig {
            replicas: 4,
            batch_size: 64,
            m0: 32,
            eta0: 0.03,
            gns_smoothing: 0.05,
            use_adascale: true,
            momentum: 0.0,
            seed: 13,
        },
    )
    .unwrap();
    for _ in 0..200 {
        t.step();
    }
    let phi = t.phi().unwrap();
    let external = pollux::models::EfficiencyModel::from_noise_scale(32, phi).unwrap();
    let internal = t.efficiency_model();
    for m in [32u64, 64, 256, 2048] {
        assert!((external.efficiency(m) - internal.efficiency(m)).abs() < 1e-12);
    }
}
