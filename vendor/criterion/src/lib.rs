//! Offline vendored wall-clock benchmark harness.
//!
//! API-compatible with the subset of `criterion` this workspace uses
//! (`Criterion::bench_function`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, `criterion_group!`, `criterion_main!`). Instead of
//! criterion's statistical machinery it runs a short warm-up, sizes
//! the measurement loop to a fixed time budget, and reports the mean
//! wall-clock time per iteration.
//!
//! Set `POLLUX_BENCH_BUDGET_MS` to change the per-benchmark
//! measurement budget (default 1500 ms).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Hint for `iter_batched` (ignored by the stub; batches always run
/// one input per measured call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver handed to each registered target function.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("POLLUX_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1500);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Measures `f`'s routine and prints `id: <mean per iteration>`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.budget,
            mean: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        println!(
            "{id:<48} time: {:>12} ({} iterations)",
            format_duration(b.mean),
            b.iterations
        );
        self
    }

    /// Opens a named benchmark group; member ids print as
    /// `group/function/parameter`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Identifier of one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, as printed in the report line.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// A bare parameter id (no function-name prefix).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A named family of related benchmarks (stub: shares the parent
/// `Criterion` budget; `sample_size` is accepted and ignored).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes its measurement
    /// loop from the time budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` against a borrowed input under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op in the stub; provided for API parity).
    pub fn finish(self) {}
}

/// Runs and times a single benchmark routine.
pub struct Bencher {
    budget: Duration,
    mean: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` repeatedly and records the mean duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` over fresh inputs from `setup`; only the
    /// routine is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }

    /// Shared driver: one warm-up pass, then as many timed passes as
    /// fit the budget (at least 5, at most 10 000).
    fn run(&mut self, mut timed_pass: impl FnMut() -> Duration) {
        let probe = timed_pass();
        let est = probe.max(Duration::from_nanos(1));
        let target = (self.budget.as_nanos() / est.as_nanos()).clamp(5, 10_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..target {
            total += timed_pass();
        }
        self.iterations = target;
        self.mean = total / target as u32;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark target functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts_iterations() {
        std::env::set_var("POLLUX_BENCH_BUDGET_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32; 16],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        std::env::remove_var("POLLUX_BENCH_BUDGET_MS");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(10)).ends_with('s'));
    }
}
