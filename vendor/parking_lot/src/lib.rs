//! Offline vendored stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync::{Mutex, RwLock}` exposing
//! parking_lot's guard-returning API (`lock()`, `read()`, `write()`
//! return guards directly instead of `Result`s). Lock poisoning is
//! translated to a panic on acquisition, which matches how this
//! workspace treats a panicked critical section: unrecoverable.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual-exclusion lock; `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned by a panicked holder")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .expect("mutex poisoned by a panicked holder")
    }
}

/// Readers-writer lock; `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned by a panicked writer")
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .expect("rwlock poisoned by a panicked writer")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .expect("rwlock poisoned by a panicked writer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_counter() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads_and_exclusive_writes() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len(), r2.len());
        }
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
        let mut owned = RwLock::new(5u32);
        *owned.get_mut() = 6;
        assert_eq!(owned.into_inner(), 6);
    }
}
