//! `proptest::collection::vec` — variable-length `Vec` strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specification for [`vec()`]: either an exact length or a
/// half-open / inclusive range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range {r:?}");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and
/// whose length is drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..=self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a `Vec` strategy; `size` may be a `usize`, `Range<usize>`,
/// or `RangeInclusive<usize>`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_follow_size_spec() {
        let mut rng = crate::__case_rng(7);
        for case in 0..50 {
            let exact = vec(0u32..5, 3usize).generate(&mut rng);
            assert_eq!(exact.len(), 3, "case {case}");
            let ranged = vec(0u32..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&ranged.len()), "case {case}");
        }
    }
}
