//! Offline vendored mini property-testing framework.
//!
//! API-compatible with the subset of `proptest` this workspace uses:
//! `proptest! { #[test] fn name(x in strategy, ..) { .. } }` blocks,
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, range and
//! tuple strategies, [`collection::vec`], [`strategy::Just`],
//! `prop_flat_map`, `proptest::num::<int>::ANY`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from the real crate: inputs are drawn from a
//! deterministic per-case RNG (seeded from the case index, so runs
//! are reproducible) and **failing cases are not shrunk** — the
//! original failing input is reported as-is via the panic message.

pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Builds the deterministic RNG for one generated case.
#[doc(hidden)]
pub fn __case_rng(case: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    // Golden-ratio stride decorrelates consecutive case seeds.
    rand::rngs::StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case.wrapping_add(1)))
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ..)`
/// item becomes a regular test that samples its strategies for
/// `ProptestConfig::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::__case_rng(case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )+
                $body
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property test (no shrinking; panics
/// with the standard `assert!` message).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -2i64..=4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_vec_and_flat_map(
            (len, items) in (1usize..5).prop_flat_map(|len| {
                (Just(len), crate::collection::vec(0u8..10, len))
            }),
            free in crate::collection::vec(0u16..100, 2..6),
        ) {
            prop_assert_eq!(items.len(), len);
            prop_assert!(free.len() >= 2 && free.len() < 6);
            prop_assert!(items.iter().all(|&v| v < 10));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..8)
            .map(|c| s.generate(&mut crate::__case_rng(c)))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|c| s.generate(&mut crate::__case_rng(c)))
            .collect();
        assert_eq!(a, b);
    }
}
