//! `proptest::num::<type>::ANY` — full-domain strategies for
//! primitive integers.

macro_rules! any_int_module {
    ($($t:ident),+ $(,)?) => {$(
        pub mod $t {
            use crate::strategy::Strategy;
            use rand::rngs::StdRng;
            use rand::Rng;

            /// Strategy over the whole domain of the integer type.
            #[derive(Debug, Clone, Copy)]
            pub struct Any;

            /// Uniform over every representable value.
            pub const ANY: Any = Any;

            impl Strategy for Any {
                // `std::primitive::` disambiguates from the enclosing
                // module, which shares the primitive's name.
                type Value = std::primitive::$t;

                fn generate(&self, rng: &mut StdRng) -> std::primitive::$t {
                    rng.gen_range(std::primitive::$t::MIN..=std::primitive::$t::MAX)
                }
            }
        }
    )+};
}

any_int_module!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;

    #[test]
    fn any_u64_covers_high_bits() {
        let mut rng = crate::__case_rng(11);
        let any_high = (0..64).any(|_| super::u64::ANY.generate(&mut rng) > u64::MAX / 2);
        assert!(any_high, "64 draws never hit the top half of the domain");
    }
}
