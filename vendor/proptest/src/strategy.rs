//! Core [`Strategy`] trait plus the combinators this workspace uses:
//! ranges over primitive numerics, tuples, [`Just`], and
//! [`Strategy::prop_flat_map`].

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps each generated value through `f` to obtain a second-stage
    /// strategy, then draws from that (dependent generation).
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { base: self, f }
    }

    /// Maps each generated value through `f`.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, F, S> Strategy for FlatMap<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> S,
    S: Strategy,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, T> Strategy for Map<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (S0 / 0, S1 / 1)
    (S0 / 0, S1 / 1, S2 / 2)
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3)
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4)
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5)
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6)
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6, S7 / 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_yields_value_and_map_applies() {
        let mut rng = crate::__case_rng(0);
        assert_eq!(Just(41u32).generate(&mut rng), 41);
        let doubled = (1u32..5).prop_map(|v| v * 2).generate(&mut rng);
        assert!(doubled % 2 == 0 && (2..10).contains(&doubled));
    }
}
