//! Runner configuration (`ProptestConfig`).

/// Controls how many cases each property test generates.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; kept identical so un-tuned
        // property blocks exercise the same case count.
        ProptestConfig { cases: 256 }
    }
}
