//! Offline vendored stand-in for the `rand` crate (0.8-compatible
//! subset).
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the small slice of the `rand` API it actually uses:
//!
//! - [`rngs::StdRng`]: a deterministic xoshiro256\*\* generator seeded
//!   through SplitMix64 (`seed_from_u64`);
//! - [`Rng`]: `gen_range` over integer/float `Range`/`RangeInclusive`,
//!   `gen_bool`, and raw `next_u64`;
//! - [`seq::SliceRandom`]: Fisher-Yates `shuffle` and `choose`.
//!
//! The streams are *not* bit-compatible with upstream `rand`; they are
//! only required to be deterministic for a fixed seed, which is the
//! contract every test and the scheduler's determinism guarantee rely
//! on.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of
    /// [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn u64_to_unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let width = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let draw = ((rng.next_u64() as u128 * width as u128) >> 64) as $wide;
                self.start.wrapping_add(draw as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let width = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if width == u64::MAX {
                    // Full 64-bit range: every draw is in range.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * (width as u128 + 1)) >> 64) as $wide;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = u64_to_unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let u = u64_to_unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        u64_to_unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&g));
        }
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(2);
        // Must not overflow or panic.
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!StdRng::seed_from_u64(4).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(4).gen_bool(1.0));
    }
}
