//! Deterministic generators.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step, used to expand a `u64` seed into full state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard deterministic generator: xoshiro256\*\*.
///
/// Not bit-compatible with upstream `rand::rngs::StdRng` (ChaCha12);
/// the only guarantee is a fixed, high-quality stream per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // A xoshiro state of all zeros is a fixed point; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_accepts_zero_seed() {
        let mut rng = StdRng::from_seed([0; 32]);
        // Must not collapse to the all-zero fixed point.
        assert!((0..4).any(|_| rng.next_u64() != 0));
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = StdRng::seed_from_u64(11);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
