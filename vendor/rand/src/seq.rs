//! Slice sampling helpers.

use crate::{RngCore, SampleRange};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher-Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            // `sample_single` directly: `Rng::gen_range` requires a
            // `Sized` receiver, which `R` is not guaranteed to be.
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (0..self.len()).sample_single(rng);
            self.get(i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1u32, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let &x = v.choose(&mut rng).unwrap();
            seen[(x - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
