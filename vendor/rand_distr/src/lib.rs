//! Offline vendored stand-in for the `rand_distr` crate.
//!
//! Implements the [`Distribution`] trait plus the [`Normal`] and
//! [`LogNormal`] distributions used by the workload generator, the
//! gradient-noise-scale simulator, and the synthetic datasets. Sampling
//! uses the Box-Muller transform (one fresh pair of uniforms per draw,
//! no cached spare) so a sample consumes a fixed number of RNG words —
//! a property the workspace's determinism tests rely on.

use rand::RngCore;

/// Types from which values can be sampled with an `Rng`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution. `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error);
        }
        Ok(Self { mean, std_dev })
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller: always draws exactly two uniforms
        // (`sample_single` directly — `Rng::gen_range` needs a `Sized`
        // receiver, which `R` is not guaranteed to be).
        use rand::SampleRange;
        let u1: f64 = (f64::MIN_POSITIVE..1.0).sample_single(rng);
        let u2: f64 = (0.0f64..1.0).sample_single(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates the distribution over `exp` of a normal with the given
    /// location `mu` and scale `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(Self {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_roughly_right() {
        let n = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.3, "var = {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
