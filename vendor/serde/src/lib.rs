//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so serialization is
//! reduced to the subset this workspace needs: a [`Serialize`] marker
//! whose only operation renders the value through its `Debug`
//! implementation (consumed by the vendored `serde_json` stub's
//! `to_string_pretty`), and no-op `#[derive(Serialize, Deserialize)]`
//! macros so existing derive attributes keep compiling unchanged.
//!
//! `Serialize` is blanket-implemented for every `Debug` type; the
//! derives exist purely so `#[derive(...)]` and `#[serde(...)]`
//! attributes parse.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable values; rendering goes through `Debug`.
pub trait Serialize {
    /// Renders the value as pretty `Debug` text (the stub's stand-in
    /// for a JSON document).
    fn to_pretty_debug(&self) -> String;
}

impl<T: std::fmt::Debug + ?Sized> Serialize for T {
    fn to_pretty_debug(&self) -> String {
        format!("{self:#?}")
    }
}

/// Marker for deserializable values (never exercised by the stub).
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Serialize, Deserialize)]
    #[serde(rename_all = "snake_case")]
    struct Sample {
        x: u32,
        label: String,
    }

    #[test]
    fn derives_and_attributes_compile_and_render() {
        let s = Sample {
            x: 7,
            label: "hi".into(),
        };
        assert_eq!((s.x, s.label.as_str()), (7, "hi"));
        let text = s.to_pretty_debug();
        assert!(text.contains("Sample"));
        assert!(text.contains('7'));
        assert!(text.contains("hi"));
    }
}
