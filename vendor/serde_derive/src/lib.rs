//! No-op `Serialize`/`Deserialize` derives for the vendored `serde`
//! stub.
//!
//! The stub's `Serialize` trait is blanket-implemented for every
//! `Debug` type, so the derives only need to exist (and accept
//! `#[serde(...)]` attributes) — they generate no code.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; generates nothing (the trait is
/// blanket-implemented in the `serde` stub).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; generates nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
