//! Offline vendored stand-in for `serde_json`.
//!
//! Because the vendored `serde` stub renders values through `Debug`
//! rather than a real serializer, the "JSON" produced here is pretty
//! `Debug` text. The workspace only writes these documents for humans
//! (experiment dumps gated behind `POLLUX_JSON_DIR`); nothing parses
//! them back.

/// Serialization error (never produced by the stub, kept for API
/// compatibility).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serialization failed")
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders `value` as indented text (pretty `Debug` under the stub).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_pretty_debug())
}

/// Renders `value` as a single line of text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value
        .to_pretty_debug()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" "))
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_output_contains_fields() {
        #[derive(Debug)]
        struct P {
            a: u32,
        }
        assert_eq!(P { a: 42 }.a, 42);
        let text = super::to_string_pretty(&P { a: 42 }).unwrap();
        assert!(text.contains("42"));
        let line = super::to_string(&P { a: 42 }).unwrap();
        assert!(!line.contains('\n'));
    }
}
